package seam

import (
	"math"
	"testing"
)

// The Rossby-Haurwitz wave (TC6) has no closed-form evolution; the discrete
// core is validated through its conserved integrals: mass exactly, energy
// and potential enstrophy to high relative accuracy over a short
// integration.
func TestWilliamson6Conservation(t *testing.T) {
	g := testGrid(t, 4, 6)
	sw, err := NewShallowWater(g)
	if err != nil {
		t.Fatal(err)
	}
	wind, phi := Williamson6(g.Radius, g.Omega)
	sw.SetState(wind, phi)

	// Sanity of the initial state: positive geopotential everywhere and
	// winds below 150 m/s.
	for e := 0; e < g.NumElems(); e++ {
		for i := 0; i < g.PointsPerElem(); i++ {
			if sw.Phi[e][i] <= 0 {
				t.Fatalf("non-positive Phi %v", sw.Phi[e][i])
			}
		}
	}

	mass0 := sw.TotalMass()
	e0 := sw.TotalEnergy()
	q0 := sw.PotentialEnstrophy()
	dt := sw.MaxStableDt(0.3)
	for s := 0; s < 40; s++ {
		sw.Step(dt)
	}
	if rel := math.Abs(sw.TotalMass()-mass0) / mass0; rel > 1e-12 {
		t.Errorf("TC6 mass drift %v", rel)
	}
	if rel := math.Abs(sw.TotalEnergy()-e0) / e0; rel > 1e-7 {
		t.Errorf("TC6 energy drift %v", rel)
	}
	if rel := math.Abs(sw.PotentialEnstrophy()-q0) / q0; rel > 1e-6 {
		t.Errorf("TC6 enstrophy drift %v", rel)
	}
	// No NaNs anywhere.
	for e := 0; e < g.NumElems(); e++ {
		for i := 0; i < g.PointsPerElem(); i++ {
			if math.IsNaN(sw.Phi[e][i]) || math.IsNaN(sw.V1[e][i]) {
				t.Fatal("NaN in TC6 state")
			}
		}
	}
}

// The wave should actually move: after a few hours the field differs
// appreciably from the initial condition (guards against a frozen core
// passing the conservation test trivially).
func TestWilliamson6WaveMoves(t *testing.T) {
	g := testGrid(t, 3, 5)
	sw, _ := NewShallowWater(g)
	wind, phi := Williamson6(g.Radius, g.Omega)
	sw.SetState(wind, phi)
	dt := sw.MaxStableDt(0.3)
	steps := int(6 * 3600 / dt)
	for s := 0; s < steps; s++ {
		sw.Step(dt)
	}
	if d := sw.PhiL2Error(phi); d < 1e-4 {
		t.Errorf("TC6 field barely moved after 6 h: %v", d)
	}
}
