package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sfccube/internal/obs"
)

// ErrQueueTimeout is the sentinel behind every admission shed caused by the
// caller's own clock: the request's context expired (or was cancelled)
// before a worker freed up, so the work was never started. Match with
// errors.Is; the concrete *QueueTimeoutError carries the cause and the
// Retry-After hint.
var ErrQueueTimeout = errors.New("service: request expired while queued for a worker")

// QueueTimeoutError is the concrete shed error behind ErrQueueTimeout.
type QueueTimeoutError struct {
	// Cause is the context error that ended the wait.
	Cause error
	// RetryAfter is the server's back-off hint.
	RetryAfter time.Duration
}

func (e *QueueTimeoutError) Error() string {
	return fmt.Sprintf("%v: %v", ErrQueueTimeout, e.Cause)
}

func (e *QueueTimeoutError) Is(target error) bool { return target == ErrQueueTimeout }
func (e *QueueTimeoutError) Unwrap() error        { return e.Cause }

// QueueFullError reports a request shed because the admission queue already
// holds its configured maximum of waiters. The HTTP layer maps it to 429
// with a Retry-After header.
type QueueFullError struct {
	// Depth is the queue bound that was hit.
	Depth int
	// RetryAfter is the server's back-off hint.
	RetryAfter time.Duration
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("service: admission queue full (%d already waiting)", e.Depth)
}

// DeadlineTooShortError reports a request shed before queueing because its
// remaining deadline could not cover the route's observed median service
// time — admitting it would burn a worker on an answer the caller will
// never see. The HTTP layer maps it to 503 with a Retry-After header.
type DeadlineTooShortError struct {
	// Route is the canonical method whose estimate was consulted.
	Route string
	// Remaining is the caller's budget at admission time.
	Remaining time.Duration
	// Need is the observed p50 service time for the route.
	Need time.Duration
	// RetryAfter is the server's back-off hint.
	RetryAfter time.Duration
}

func (e *DeadlineTooShortError) Error() string {
	return fmt.Sprintf("service: remaining deadline %v below observed p50 %v for method %q",
		e.Remaining.Round(time.Microsecond), e.Need.Round(time.Microsecond), e.Route)
}

// isShed reports whether err is an admission shed — deliberate
// back-pressure, not a service failure (excluded from partsrv_failures_total).
func isShed(err error) bool {
	var qf *QueueFullError
	var ds *DeadlineTooShortError
	return errors.Is(err, ErrQueueTimeout) || errors.As(err, &qf) || errors.As(err, &ds)
}

// admitter is the bounded admission queue in front of the worker pool. It
// replaces the bare `sem <- struct{}{}` send, which had two failure modes
// under overload: an unbounded crowd of blocked goroutines, and workers
// wasted on requests whose callers had already hung up.
type admitter struct {
	sem        chan struct{} // worker slots
	waiters    chan struct{} // queue slots
	retryAfter time.Duration
	depth      *obs.Gauge
	waitNs     *obs.Histogram
}

func newAdmitter(workers, queueDepth int, retryAfter time.Duration, depth *obs.Gauge, waitNs *obs.Histogram) *admitter {
	return &admitter{
		sem:        make(chan struct{}, workers),
		waiters:    make(chan struct{}, queueDepth),
		retryAfter: retryAfter,
		depth:      depth,
		waitNs:     waitNs,
	}
}

// acquire claims a worker slot, queueing within the depth bound while ctx
// lives. An already-expired ctx never touches the pool, a full queue sheds
// immediately, and a ctx that dies mid-wait abandons the slot claim.
func (a *admitter) acquire(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		// The regression this type exists for: a request that is already
		// dead must not consume a worker slot even when the pool is idle.
		return &QueueTimeoutError{Cause: err, RetryAfter: a.retryAfter}
	}
	select {
	case a.sem <- struct{}{}:
		return nil
	default:
	}
	select {
	case a.waiters <- struct{}{}:
	default:
		return &QueueFullError{Depth: cap(a.waiters), RetryAfter: a.retryAfter}
	}
	a.depth.Set(int64(len(a.waiters)))
	start := time.Now()
	defer func() {
		<-a.waiters
		a.depth.Set(int64(len(a.waiters)))
	}()
	select {
	case a.sem <- struct{}{}:
		a.waitNs.Observe(time.Since(start).Nanoseconds())
		return nil
	case <-ctx.Done():
		return &QueueTimeoutError{Cause: ctx.Err(), RetryAfter: a.retryAfter}
	}
}

func (a *admitter) release() { <-a.sem }

// latWindow is the sliding sample count behind each route's p50 estimate —
// small enough to track regime changes, large enough to ride out noise.
const latWindow = 64

// latEstimator is a fixed-window service-time estimator, one per route.
type latEstimator struct {
	mu   sync.Mutex
	ring [latWindow]time.Duration
	n    int
}

func (e *latEstimator) observe(d time.Duration) {
	e.mu.Lock()
	e.ring[e.n%latWindow] = d
	e.n++
	e.mu.Unlock()
}

// p50 returns the median of the window, or 0 before any sample (the
// estimator never sheds blind).
func (e *latEstimator) p50() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	k := e.n
	if k == 0 {
		return 0
	}
	if k > latWindow {
		k = latWindow
	}
	buf := make([]time.Duration, k)
	copy(buf, e.ring[:k])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[k/2]
}

// admit gates one computation: shed when the caller's remaining deadline
// cannot cover the route's observed p50, shed when the queue is full, queue
// otherwise. Shed reasons are counted under partsrv_shed_total.
func (s *Service) admit(ctx context.Context, route string) error {
	if d, ok := ctx.Deadline(); ok {
		if p50 := s.estimates[route].p50(); p50 > 0 {
			if remaining := time.Until(d); remaining < p50 {
				s.shedDeadline.Inc()
				return &DeadlineTooShortError{
					Route: route, Remaining: remaining, Need: p50,
					RetryAfter: s.adm.retryAfter,
				}
			}
		}
	}
	err := s.adm.acquire(ctx)
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueTimeout):
		s.shedCancelled.Inc()
	default:
		s.shedFull.Inc()
	}
	return err
}
