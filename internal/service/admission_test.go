package service

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

func newIdleAdmitter(workers, depth int) *admitter {
	return newAdmitter(workers, depth, time.Second, nil, nil)
}

// TestAdmitterExpiredNeverConsumesWorker is the regression the admission
// queue exists for: the old bare `sem <- struct{}{}` send would hand an
// idle worker to a request whose caller had already hung up.
func TestAdmitterExpiredNeverConsumesWorker(t *testing.T) {
	a := newIdleAdmitter(2, 4)
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	err := a.acquire(ctx)
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("expired request admitted: err=%v", err)
	}
	if len(a.sem) != 0 {
		t.Fatalf("expired request consumed a worker slot (%d in use)", len(a.sem))
	}
	var qt *QueueTimeoutError
	if !errors.As(err, &qt) || !errors.Is(qt.Cause, context.DeadlineExceeded) {
		t.Errorf("shed error %v does not carry the context cause", err)
	}
}

func TestAdmitterQueueFull(t *testing.T) {
	a := newIdleAdmitter(1, 0) // one worker, zero waiters
	if err := a.acquire(context.Background()); err != nil {
		t.Fatalf("idle pool rejected: %v", err)
	}
	err := a.acquire(context.Background())
	var qf *QueueFullError
	if !errors.As(err, &qf) {
		t.Fatalf("busy pool with full queue returned %v, want QueueFullError", err)
	}
	if qf.RetryAfter != time.Second {
		t.Errorf("RetryAfter = %v, want the configured 1s", qf.RetryAfter)
	}
	a.release()
	if err := a.acquire(context.Background()); err != nil {
		t.Fatalf("released worker not reusable: %v", err)
	}
}

func TestAdmitterQueueTimeoutWhileQueued(t *testing.T) {
	a := newIdleAdmitter(1, 4)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := a.acquire(ctx); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("queued wait past its deadline returned %v, want ErrQueueTimeout", err)
	}
	if len(a.waiters) != 0 {
		t.Fatalf("abandoned wait left %d phantom waiters in the queue", len(a.waiters))
	}
	// A later caller still gets the slot once it frees.
	done := make(chan error, 1)
	go func() { done <- a.acquire(context.Background()) }()
	a.release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("queued caller not admitted after release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued caller never admitted after release")
	}
}

func TestLatEstimatorP50(t *testing.T) {
	var e latEstimator
	if got := e.p50(); got != 0 {
		t.Fatalf("empty estimator p50 = %v, want 0 (never shed blind)", got)
	}
	e.observe(7 * time.Millisecond)
	if got := e.p50(); got != 7*time.Millisecond {
		t.Fatalf("single-sample p50 = %v", got)
	}
	// The window slides: a full window of old samples is displaced by a
	// full window of new ones.
	for i := 0; i < latWindow; i++ {
		e.observe(10 * time.Millisecond)
	}
	for i := 0; i < latWindow; i++ {
		e.observe(20 * time.Millisecond)
	}
	if got := e.p50(); got != 20*time.Millisecond {
		t.Fatalf("post-slide p50 = %v, want 20ms", got)
	}
}

// TestExpiredRequestShedsBeforeWorker drives the satellite regression
// through the whole service: an already-dead request must produce a shed,
// zero computations and zero recorded failures.
func TestExpiredRequestShedsBeforeWorker(t *testing.T) {
	s := newTestService(t, Config{})
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	_, _, err := s.Partition(ctx, Request{Ne: 4, NParts: 6})
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("expired request returned %v, want ErrQueueTimeout", err)
	}
	if got := counter(t, s, "partsrv_computations_total"); got != 0 {
		t.Errorf("expired request ran %v computations", got)
	}
	if got := counter(t, s, `partsrv_shed_total{reason="cancelled"}`); got != 1 {
		t.Errorf("cancelled-shed counter = %v, want 1", got)
	}
	if got := counter(t, s, "partsrv_failures_total"); got != 0 {
		t.Errorf("shed counted as failure (failures_total = %v)", got)
	}
}

// TestDeadlineTooShortShed: once the estimator has seen how long a route
// takes, a request whose remaining deadline cannot cover the median is
// refused before it queues.
func TestDeadlineTooShortShed(t *testing.T) {
	s := newTestService(t, Config{})
	s.estimates["sfc"].observe(time.Hour)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, _, err := s.Partition(ctx, Request{Ne: 4, NParts: 6, Method: "sfc"})
	var ds *DeadlineTooShortError
	if !errors.As(err, &ds) {
		t.Fatalf("doomed request returned %v, want DeadlineTooShortError", err)
	}
	if ds.Route != "sfc" || ds.Need != time.Hour {
		t.Errorf("shed error %+v does not describe the route estimate", ds)
	}
	if got := counter(t, s, `partsrv_shed_total{reason="deadline"}`); got != 1 {
		t.Errorf("deadline-shed counter = %v, want 1", got)
	}
	// The same request without a caller deadline is served normally.
	payload, _, err := s.Partition(context.Background(), Request{Ne: 4, NParts: 6, Method: "sfc"})
	if err != nil {
		t.Fatalf("deadline-free request failed: %v", err)
	}
	validate(t, decodeResponse(t, payload))
}

// TestBreakerTripsToFallback is the tentpole's end-to-end: a pathological
// method trips its breaker, and subsequent requests short-circuit straight
// to the healthy tail of the fallback chain — uncached, and labelled.
func TestBreakerTripsToFallback(t *testing.T) {
	s := newTestService(t, Config{BreakerFailures: 2, BreakerCooldown: time.Hour})
	seed := func(v int64) *int64 { return &v }

	// Two already-expired requests: KWAY and RB each fail twice with the
	// context error, reaching the trip threshold.
	for i := int64(1); i <= 2; i++ {
		payload, _, err := s.Partition(context.Background(),
			Request{Ne: 4, NParts: 6, Method: "auto", Seed: seed(i), DeadlineMS: -1})
		if err != nil {
			t.Fatalf("expired-budget request %d failed: %v", i, err)
		}
		if resp := decodeResponse(t, payload); !resp.Degraded {
			t.Fatalf("expired-budget request %d not degraded", i)
		}
	}
	for _, m := range []string{"KWAY", "RB"} {
		if got := counter(t, s, `partsrv_breaker_state{method="`+m+`"}`); got != 1 {
			t.Fatalf("breaker %s state = %v, want 1 (open)", m, got)
		}
	}

	// A healthy request now skips the tripped links without attempting them.
	payload, meta, err := s.Partition(context.Background(),
		Request{Ne: 4, NParts: 6, Method: "auto", Seed: seed(3)})
	if err != nil {
		t.Fatalf("post-trip request failed: %v", err)
	}
	resp := decodeResponse(t, payload)
	if want := []string{"KWAY", "RB"}; !reflect.DeepEqual(resp.BreakerSkipped, want) {
		t.Errorf("BreakerSkipped = %v, want %v", resp.BreakerSkipped, want)
	}
	if resp.Strategy != "SFC" {
		t.Errorf("strategy %q, want SFC (first healthy link)", resp.Strategy)
	}
	if resp.Degraded || len(resp.Attempts) != 0 {
		t.Errorf("short-circuited response marked degraded (%v) or carries attempts (%v)", resp.Degraded, resp.Attempts)
	}
	if !meta.BreakerOpen {
		t.Error("Meta.BreakerOpen not set")
	}
	validate(t, resp)
	if got := counter(t, s, `partsrv_breaker_short_circuits_total{method="KWAY"}`); got != 1 {
		t.Errorf("short-circuit counter = %v, want 1", got)
	}

	// Breaker-skipped responses reflect transient state and are never
	// cached: replaying the same request computes again.
	before := counter(t, s, "partsrv_computations_total")
	_, _, err = s.Partition(context.Background(),
		Request{Ne: 4, NParts: 6, Method: "auto", Seed: seed(3)})
	if err != nil {
		t.Fatal(err)
	}
	if got := counter(t, s, "partsrv_computations_total"); got != before+1 {
		t.Errorf("breaker-skipped response was cached (computations %v -> %v)", before, got)
	}
	if got := counter(t, s, "partsrv_cache_hits_total"); got != 0 {
		t.Errorf("cache hits = %v, want 0", got)
	}
}
