package service

import (
	"container/list"
	"sync"
)

// Cache is a bounded, content-addressed LRU cache from canonical request
// key to encoded response bytes. Both bounds are enforced on every insert:
// total payload bytes and entry count; the least-recently-used entries are
// evicted first. A single value larger than the byte bound is simply not
// cached. Safe for concurrent use.
type Cache struct {
	mu         sync.Mutex
	maxBytes   int64
	maxEntries int
	bytes      int64
	ll         *list.List // front = most recently used
	items      map[string]*list.Element
	evictions  int64
}

type cacheItem struct {
	key string
	val []byte
}

// NewCache returns a cache bounded by maxBytes of payload and maxEntries
// values. Bounds <= 0 fall back to 64 MiB and 4096 entries.
func NewCache(maxBytes int64, maxEntries int) *Cache {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	return &Cache{
		maxBytes:   maxBytes,
		maxEntries: maxEntries,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// Get returns the cached bytes for key and marks the entry most recently
// used. The returned slice is shared; callers must not modify it.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*cacheItem).val, true
}

// Put inserts (or refreshes) key with val and evicts LRU entries until both
// bounds hold again. val is retained; callers must not modify it afterwards.
func (c *Cache) Put(key string, val []byte) {
	if int64(len(val)) > c.maxBytes {
		return // would evict the whole cache and still not fit
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		it := e.Value.(*cacheItem)
		c.bytes += int64(len(val)) - int64(len(it.val))
		it.val = val
		c.ll.MoveToFront(e)
	} else {
		c.items[key] = c.ll.PushFront(&cacheItem{key: key, val: val})
		c.bytes += int64(len(val))
	}
	for (c.bytes > c.maxBytes || c.ll.Len() > c.maxEntries) && c.ll.Len() > 0 {
		back := c.ll.Back()
		it := back.Value.(*cacheItem)
		c.ll.Remove(back)
		delete(c.items, it.key)
		c.bytes -= int64(len(it.val))
		c.evictions++
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the current total payload size.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Evictions returns the number of entries evicted so far.
func (c *Cache) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
