package service

import (
	"fmt"
	"testing"
)

func TestCacheHitMissAndLRUOrder(t *testing.T) {
	c := NewCache(1<<20, 3)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("aa"))
	c.Put("b", []byte("bb"))
	c.Put("c", []byte("cc"))
	if v, ok := c.Get("a"); !ok || string(v) != "aa" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	// "a" is now most recent; inserting "d" must evict "b" (the LRU).
	c.Put("d", []byte("dd"))
	if _, ok := c.Get("b"); ok {
		t.Error("LRU entry b survived eviction")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("entry %s evicted, want kept", k)
		}
	}
	if c.Evictions() != 1 {
		t.Errorf("evictions = %d, want 1", c.Evictions())
	}
}

func TestCacheByteBound(t *testing.T) {
	c := NewCache(10, 100)
	c.Put("a", []byte("0123"))
	c.Put("b", []byte("4567"))
	if c.Bytes() != 8 || c.Len() != 2 {
		t.Fatalf("bytes=%d len=%d, want 8/2", c.Bytes(), c.Len())
	}
	c.Put("c", []byte("89ab")) // 12 bytes total: evict until <= 10
	if c.Bytes() > 10 {
		t.Errorf("bytes=%d exceeds bound 10", c.Bytes())
	}
	if _, ok := c.Get("a"); ok {
		t.Error("oldest entry survived byte-bound eviction")
	}
}

func TestCacheUpdateInPlace(t *testing.T) {
	c := NewCache(100, 10)
	c.Put("k", []byte("small"))
	c.Put("k", []byte("a rather larger value"))
	if c.Len() != 1 {
		t.Fatalf("len=%d after update, want 1", c.Len())
	}
	if got := c.Bytes(); got != int64(len("a rather larger value")) {
		t.Errorf("bytes=%d not retallied on update", got)
	}
	if v, _ := c.Get("k"); string(v) != "a rather larger value" {
		t.Errorf("Get(k) = %q", v)
	}
}

func TestCacheOversizedValueNotCached(t *testing.T) {
	c := NewCache(4, 10)
	c.Put("big", []byte("way too large"))
	if c.Len() != 0 {
		t.Error("oversized value was cached")
	}
	// And it must not have wiped existing entries either.
	c.Put("ok", []byte("ok"))
	c.Put("big", []byte("way too large"))
	if _, ok := c.Get("ok"); !ok {
		t.Error("oversized Put evicted an unrelated entry")
	}
}

func TestCacheEntryBoundChurn(t *testing.T) {
	c := NewCache(1<<20, 4)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if c.Len() != 4 {
		t.Fatalf("len=%d, want 4", c.Len())
	}
	for i := 96; i < 100; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("recent entry k%d missing", i)
		}
	}
}
