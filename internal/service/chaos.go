package service

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"sfccube/internal/obs"
	"sfccube/internal/resilience"
)

// stallKey carries a chaos compute stall through the request context. It is
// a context VALUE, not a deadline, so it survives the context.WithoutCancel
// detachment in Partition and reaches the compute worker — which is the
// point: the stall must burn the compute budget exactly like pathological
// real work would, while a client disconnect still cannot abort the
// detached computation.
type stallKey struct{}

// WithComputeStall returns ctx instructing the next computation started
// under it to stall for d before doing real work.
func WithComputeStall(ctx context.Context, d time.Duration) context.Context {
	return context.WithValue(ctx, stallKey{}, d)
}

func computeStallFrom(ctx context.Context) time.Duration {
	d, _ := ctx.Value(stallKey{}).(time.Duration)
	return d
}

// ChaosMiddleware wraps next with seeded request-level fault injection. The
// plan decides per request — a pure function of (seed, plan, request index),
// so a soak run is replay-identical under the same seed. Only /v1/ paths are
// eligible; health and observability surfaces stay clean. nil plan is a
// no-op.
func ChaosMiddleware(plan *resilience.ChaosPlan, reg *obs.Registry, next http.Handler) http.Handler {
	if plan == nil {
		return next
	}
	reg.Help("partsrv_chaos_injected_total", "Chaos faults injected at the HTTP layer, by kind.")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		sp, ok := plan.Next()
		if !ok {
			next.ServeHTTP(w, r)
			return
		}
		reg.Counter("partsrv_chaos_injected_total", "kind", sp.Kind.String()).Inc()
		switch sp.Kind {
		case resilience.ChaosSlowResp:
			t := time.NewTimer(sp.Param)
			select {
			case <-t.C:
			case <-r.Context().Done():
				t.Stop()
			}
			next.ServeHTTP(w, r)
		case resilience.ChaosDroppedConn:
			// Sever the connection without writing anything — the stdlib's
			// sanctioned way to abort from inside a handler.
			panic(http.ErrAbortHandler)
		case resilience.ChaosComputeStall:
			next.ServeHTTP(w, r.WithContext(WithComputeStall(r.Context(), sp.Param)))
		case resilience.ChaosErrInject:
			// 503, not 500: injected errors are shaped like back-pressure so
			// the soak's shed-not-collapse terminal set {2xx, 429, 503}
			// holds even with errinject in the plan.
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "chaos: injected service error"})
		default:
			next.ServeHTTP(w, r)
		}
	})
}
