package service

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sfccube/internal/obs"
	"sfccube/internal/resilience"
)

func chaosServer(t *testing.T, plan string, next http.Handler) (*obs.Registry, *httptest.Server) {
	t.Helper()
	p, err := resilience.ParseChaosPlan(plan, 7)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ts := httptest.NewServer(ChaosMiddleware(p, reg, next))
	t.Cleanup(ts.Close)
	return reg, ts
}

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
}

func TestChaosMiddlewareSkipsNonV1(t *testing.T) {
	// Rate 1 dropped connections, but health and observability paths must
	// stay clean.
	_, ts := chaosServer(t, "droppedconn@1", okHandler())
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("non-/v1/ path hit by chaos: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d, want 200", resp.StatusCode)
	}
}

func TestChaosMiddlewareErrInject(t *testing.T) {
	reg, ts := chaosServer(t, "errinject@1", okHandler())
	resp, err := http.Get(ts.URL + "/v1/partition?ne=4&nparts=6")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503 (injected errors are back-pressure-shaped)", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("injected 503 carries no Retry-After")
	}
	if got := reg.Snapshot()[`partsrv_chaos_injected_total{kind="errinject"}`]; got != 1 {
		t.Errorf("injection counter = %v, want 1", got)
	}
}

func TestChaosMiddlewareDroppedConn(t *testing.T) {
	_, ts := chaosServer(t, "droppedconn@1", okHandler())
	resp, err := http.Get(ts.URL + "/v1/partition?ne=4&nparts=6")
	if err == nil {
		resp.Body.Close()
		t.Fatalf("dropped connection produced a response: %d", resp.StatusCode)
	}
}

func TestChaosMiddlewareComputeStall(t *testing.T) {
	var got time.Duration
	_, ts := chaosServer(t, "computestall@1:150ms", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = computeStallFrom(r.Context())
	}))
	resp, err := http.Get(ts.URL + "/v1/partition?ne=4&nparts=6")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got != 150*time.Millisecond {
		t.Errorf("compute stall %v did not reach the handler context, want 150ms", got)
	}
}

func TestChaosMiddlewareSlowResp(t *testing.T) {
	_, ts := chaosServer(t, "slowresp@1:100ms", okHandler())
	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/partition?ne=4&nparts=6")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("slowresp answered in %v, want >= ~100ms", elapsed)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d, want 200 (slowresp delays, never fails)", resp.StatusCode)
	}
}

func TestChaosMiddlewareNilPlanIsIdentity(t *testing.T) {
	next := http.NewServeMux() // pointer handler, so identity is comparable
	if got := ChaosMiddleware(nil, obs.NewRegistry(), next); got != http.Handler(next) {
		t.Error("nil plan wrapped the handler")
	}
}
