package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"sfccube/internal/resilience"
)

// streamChunk is the default number of assignment entries per NDJSON line.
const streamChunk = 16384

// Handler returns the service mux: /healthz, /v1/partition (JSON) and
// /v1/partition/stream (NDJSON for large K). Observability surfaces are
// mounted separately with AttachObs so daemons compose them on the same
// mux.
func (s *Service) Handler() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/partition", s.instrument("partition", s.handlePartition))
	mux.HandleFunc("/v1/partition/stream", s.instrument("stream", s.handleStream))
	return mux
}

// statusRecorder captures the response code for the per-endpoint metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps h with per-endpoint latency and request/code counters.
func (s *Service) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	reg := s.cfg.Registry
	reg.Help("partsrv_http_requests_total", "HTTP requests by endpoint and status code.")
	reg.Help("partsrv_http_latency_ns", "HTTP request latency by endpoint.")
	lat := reg.Histogram("partsrv_http_latency_ns", "endpoint", endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		lat.Observe(time.Since(start).Nanoseconds())
		s.cfg.Registry.Counter("partsrv_http_requests_total",
			"endpoint", endpoint, "code", strconv.Itoa(rec.code)).Inc()
	}
}

// methodNotAllowed rejects anything but GET and POST with a 405 carrying
// an Allow header; r reports whether the verb was rejected.
func methodNotAllowed(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodPost {
		return false
	}
	w.Header().Set("Allow", "GET, POST")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusMethodNotAllowed)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"error": fmt.Sprintf("method %s not allowed (use GET or POST)", r.Method),
	})
	return true
}

// parseRequest reads a Request from a JSON body (POST) or query parameters
// (GET, or POST without a body). Absent seed/max_lb stay absent — the
// zero-vs-unset distinction is preserved all the way down.
func parseRequest(r *http.Request) (Request, error) {
	var req Request
	if r.Method == http.MethodPost && r.Body != nil && r.ContentLength != 0 {
		dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return req, &BadRequestError{Reason: "invalid JSON body: " + err.Error()}
		}
		return req, nil
	}
	q := r.URL.Query()
	atoi := func(name string) (int, error) {
		v, err := strconv.Atoi(q.Get(name))
		if err != nil {
			return 0, &BadRequestError{Reason: fmt.Sprintf("parameter %s: %v", name, err)}
		}
		return v, nil
	}
	var err error
	if req.Ne, err = atoi("ne"); err != nil {
		return req, err
	}
	if req.NParts, err = atoi("nparts"); err != nil {
		return req, err
	}
	req.Method = q.Get("method")
	req.WeightsSpec = q.Get("weights_spec")
	if q.Has("seed") {
		v, err := strconv.ParseInt(q.Get("seed"), 10, 64)
		if err != nil {
			return req, &BadRequestError{Reason: "parameter seed: " + err.Error()}
		}
		req.Seed = &v
	}
	if q.Has("max_lb") {
		v, err := strconv.ParseFloat(q.Get("max_lb"), 64)
		if err != nil {
			return req, &BadRequestError{Reason: "parameter max_lb: " + err.Error()}
		}
		req.MaxLB = &v
	}
	if q.Has("deadline_ms") {
		if req.DeadlineMS, err = func() (int64, error) {
			v, err := strconv.ParseInt(q.Get("deadline_ms"), 10, 64)
			if err != nil {
				return 0, &BadRequestError{Reason: "parameter deadline_ms: " + err.Error()}
			}
			return v, nil
		}(); err != nil {
			return req, err
		}
	}
	return req, nil
}

// writeError renders err as a JSON error object with the right status:
// 400 for validation failures, 422 for an exhausted fallback chain (the
// request was well-formed but unsatisfiable), 429 for a full admission
// queue and 503 for the other sheds (both with a Retry-After hint), 500
// otherwise.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var retryAfter time.Duration
	var bad *BadRequestError
	var ex *resilience.ExhaustedError
	var qf *QueueFullError
	var ds *DeadlineTooShortError
	var qt *QueueTimeoutError
	switch {
	case errors.As(err, &bad):
		code = http.StatusBadRequest
	case errors.As(err, &ex):
		code = http.StatusUnprocessableEntity
	case errors.As(err, &qf):
		code = http.StatusTooManyRequests
		retryAfter = qf.RetryAfter
	case errors.As(err, &ds):
		code = http.StatusServiceUnavailable
		retryAfter = ds.RetryAfter
	case errors.As(err, &qt):
		code = http.StatusServiceUnavailable
		retryAfter = qt.RetryAfter
	}
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retryAfter.Seconds()))))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// requestContext derives the call context: an X-Partsrv-Timeout header (a
// Go duration) becomes a context deadline, which is what the admission
// layer's deadline-aware shed consults. This is the caller's patience —
// distinct from deadline_ms, which is the compute quality budget.
func requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	h := r.Header.Get("X-Partsrv-Timeout")
	if h == "" {
		return r.Context(), func() {}, nil
	}
	d, err := time.ParseDuration(h)
	if err != nil || d <= 0 {
		return nil, nil, &BadRequestError{Reason: fmt.Sprintf("header X-Partsrv-Timeout: invalid duration %q", h)}
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// setMetaHeaders exposes the per-call envelope without touching the cached
// payload bytes.
func setMetaHeaders(w http.ResponseWriter, meta Meta) {
	if meta.CacheHit {
		w.Header().Set("X-Partsrv-Cache", "hit")
	} else {
		w.Header().Set("X-Partsrv-Cache", "miss")
	}
	if meta.Shared {
		w.Header().Set("X-Partsrv-Shared", "true")
	}
	if meta.Degraded {
		w.Header().Set("X-Partsrv-Degraded", "true")
	}
	if meta.BreakerOpen {
		w.Header().Set("X-Partsrv-Breaker", "open")
	}
}

// handlePartition answers one request with the full JSON response (the
// cached bytes verbatim on a hit).
func (s *Service) handlePartition(w http.ResponseWriter, r *http.Request) {
	if methodNotAllowed(w, r) {
		return
	}
	req, err := parseRequest(r)
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	payload, meta, err := s.Partition(ctx, req)
	if err != nil {
		writeError(w, err)
		return
	}
	setMetaHeaders(w, meta)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
	_, _ = w.Write(payload)
}

// streamHeader is the first NDJSON line: the response without its
// assignment, plus the chunking layout of the lines that follow.
type streamHeader struct {
	Response
	Chunks    int `json:"chunks"`
	ChunkSize int `json:"chunk_size"`
}

// streamLine is one assignment chunk: Assignment[Offset : Offset+len(Part)].
type streamLine struct {
	Offset     int     `json:"offset"`
	Assignment []int32 `json:"assignment"`
}

// handleStream answers one request as NDJSON: a header line with the stats
// and strategy, then the assignment in fixed-size chunks, flushed as they
// are written. Meant for large K where a client wants to start consuming
// the assignment before the full body has arrived.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	if methodNotAllowed(w, r) {
		return
	}
	req, err := parseRequest(r)
	if err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	payload, meta, err := s.Partition(ctx, req)
	if err != nil {
		writeError(w, err)
		return
	}
	var resp Response
	if err := json.Unmarshal(payload, &resp); err != nil {
		writeError(w, err)
		return
	}
	assign := resp.Assignment
	resp.Assignment = nil
	hdr := streamHeader{
		Response:  resp,
		Chunks:    (len(assign) + streamChunk - 1) / streamChunk,
		ChunkSize: streamChunk,
	}
	setMetaHeaders(w, meta)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	if err := enc.Encode(hdr); err != nil {
		return
	}
	for off := 0; off < len(assign); off += streamChunk {
		end := min(off+streamChunk, len(assign))
		if err := enc.Encode(streamLine{Offset: off, Assignment: assign[off:end]}); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}
