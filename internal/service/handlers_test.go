package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sfccube/internal/obs"
)

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	s := NewService(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestHandlerHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(b) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, b)
	}
}

func TestHandlerGetQueryAndCacheHeaders(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	url := ts.URL + "/v1/partition?ne=6&nparts=12&method=sfc"

	get := func() (*http.Response, Response) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("status %d: %s", resp.StatusCode, b)
		}
		var r Response
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			t.Fatal(err)
		}
		return resp, r
	}

	h1, r1 := get()
	if h1.Header.Get("X-Partsrv-Cache") != "miss" {
		t.Errorf("first request cache header %q, want miss", h1.Header.Get("X-Partsrv-Cache"))
	}
	if r1.Strategy != "SFC" || len(r1.Assignment) != 6*6*6 {
		t.Errorf("strategy=%s len(assignment)=%d", r1.Strategy, len(r1.Assignment))
	}
	h2, r2 := get()
	if h2.Header.Get("X-Partsrv-Cache") != "hit" {
		t.Errorf("second request cache header %q, want hit", h2.Header.Get("X-Partsrv-Cache"))
	}
	if r2.Key != r1.Key {
		t.Errorf("keys differ across identical requests: %s vs %s", r1.Key, r2.Key)
	}
	if got := counter(t, s, "partsrv_computations_total"); got != 1 {
		t.Errorf("computations = %v, want 1", got)
	}
	if got := counter(t, s, `partsrv_http_requests_total{code="200",endpoint="partition"}`); got != 2 {
		t.Errorf("http requests counter = %v, want 2", got)
	}
}

func TestHandlerPostJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"ne": 4, "nparts": 6, "method": "rb", "seed": 7}`
	resp, err := http.Post(ts.URL+"/v1/partition", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var r Response
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	if r.Method != "rb" || r.Seed != 7 {
		t.Errorf("method=%s seed=%d, want rb/7", r.Method, r.Seed)
	}
	validate(t, r)
}

func TestHandlerErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxNe: 16})
	cases := []struct {
		url  string
		want int
	}{
		{"/v1/partition?ne=banana&nparts=4", http.StatusBadRequest},
		{"/v1/partition?ne=4&nparts=banana", http.StatusBadRequest},
		{"/v1/partition?ne=999&nparts=4", http.StatusBadRequest},
		{"/v1/partition?ne=4&nparts=4&method=bogus", http.StatusBadRequest},
		{"/v1/partition?ne=4&nparts=4&max_lb=banana", http.StatusBadRequest},
		// 24 elements into 5 parts with a perfect-balance demand: the
		// well-formed request is unsatisfiable → 422.
		{"/v1/partition?ne=2&nparts=5&max_lb=0", http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		resp, err := http.Get(ts.URL + c.url)
		if err != nil {
			t.Fatal(err)
		}
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d (error %q)", c.url, resp.StatusCode, c.want, e["error"])
		}
		if e["error"] == "" {
			t.Errorf("%s: no JSON error body", c.url)
		}
	}

	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/v1/partition", "application/json", strings.NewReader(`{"ne": `))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}

	// Wrong verb: the partition endpoints accept GET and POST only.
	for _, path := range []string{"/v1/partition", "/v1/partition/stream"} {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+path+"?ne=4&nparts=4", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("DELETE %s: status %d, want 405", path, resp.StatusCode)
		}
		if resp.Header.Get("Allow") != "GET, POST" {
			t.Errorf("DELETE %s: Allow = %q, want \"GET, POST\"", path, resp.Header.Get("Allow"))
		}
		if e["error"] == "" {
			t.Errorf("DELETE %s: no JSON error body", path)
		}
	}
}

// TestHandlerShedStatusCodes maps each admission shed onto its HTTP shape:
// queue full → 429, queued-past-deadline → 503, both with Retry-After; an
// unparseable X-Partsrv-Timeout → 400.
func TestHandlerShedStatusCodes(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: -1})
	if err := s.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/partition?ne=4&nparts=6")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("queue-full shed: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Errorf("queue-full shed: Retry-After = %q, want \"1\"", resp.Header.Get("Retry-After"))
	}
	s.adm.release()

	// A server with a queue: a request whose X-Partsrv-Timeout expires
	// while it waits is shed with 503.
	s2, ts2 := newTestServer(t, Config{Workers: 1})
	if err := s2.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodGet, ts2.URL+"/v1/partition?ne=4&nparts=6", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Partsrv-Timeout", "50ms")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("queue-timeout shed: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("queue-timeout shed carries no Retry-After")
	}
	s2.adm.release()

	// Once the worker frees, the same request (with a generous budget)
	// succeeds.
	req.Header.Set("X-Partsrv-Timeout", "30s")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-release request: status %d, want 200", resp.StatusCode)
	}

	// Malformed timeout header.
	req.Header.Set("X-Partsrv-Timeout", "soon")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad timeout header: status %d, want 400", resp.StatusCode)
	}
}

// TestHandlerStream: the NDJSON stream must reassemble to exactly the
// assignment of the plain endpoint, chunked as the header declares.
func TestHandlerStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	plain, err := http.Get(ts.URL + "/v1/partition?ne=6&nparts=9")
	if err != nil {
		t.Fatal(err)
	}
	var want Response
	if err := json.NewDecoder(plain.Body).Decode(&want); err != nil {
		t.Fatal(err)
	}
	plain.Body.Close()

	resp, err := http.Get(ts.URL + "/v1/partition/stream?ne=6&nparts=9")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	if resp.Header.Get("X-Partsrv-Cache") != "hit" {
		t.Error("stream endpoint bypassed the shared cache")
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatal("no header line")
	}
	var hdr streamHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("header line: %v", err)
	}
	if hdr.Assignment != nil {
		t.Error("header line carries the assignment; it must only be chunked")
	}
	if hdr.Stats.EdgeCut != want.Stats.EdgeCut || hdr.Key != want.Key {
		t.Errorf("stream header disagrees with plain response")
	}
	got := make([]int32, 0, 6*6*6)
	lines := 0
	for sc.Scan() {
		var line streamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("chunk line: %v", err)
		}
		if line.Offset != len(got) {
			t.Fatalf("chunk offset %d, want %d (out of order?)", line.Offset, len(got))
		}
		got = append(got, line.Assignment...)
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != hdr.Chunks {
		t.Errorf("%d chunk lines, header declared %d", lines, hdr.Chunks)
	}
	if !bytes.Equal(int32Bytes(got), int32Bytes(want.Assignment)) {
		t.Error("streamed assignment differs from plain assignment")
	}
}

// TestHandlerStreamChunking exercises multi-chunk streaming by shrinking
// nothing: Ne=16 gives 1536 elements — still one chunk — so instead verify
// the chunk math against a synthetic big response via the header fields.
func TestHandlerStreamChunkMath(t *testing.T) {
	for _, k := range []int{1, streamChunk, streamChunk + 1, 3 * streamChunk} {
		chunks := (k + streamChunk - 1) / streamChunk
		if chunks < 1 && k > 0 {
			t.Errorf("k=%d: %d chunks", k, chunks)
		}
		covered := 0
		for off := 0; off < k; off += streamChunk {
			covered += min(off+streamChunk, k) - off
		}
		if covered != k {
			t.Errorf("k=%d: chunks cover %d", k, covered)
		}
	}
}

func int32Bytes(s []int32) []byte {
	var b bytes.Buffer
	for _, v := range s {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.Bytes()
}

// TestMetricsEndpointComposition: AttachObs on the service mux exposes the
// service's own counters over HTTP — the loop the load harness closes.
func TestMetricsEndpointComposition(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewService(Config{Registry: reg})
	mux := s.Handler()
	AttachObs(mux, reg)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	if _, err := http.Get(ts.URL + "/v1/partition?ne=4&nparts=6"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"partsrv_requests_total 1",
		"partsrv_computations_total 1",
		"# TYPE partsrv_compute_ns histogram",
	} {
		if !strings.Contains(string(b), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	_ = s
}
