// Package service is the partition-as-a-service layer (ROADMAP item 1): the
// request model, content-addressed cache, singleflight dedup, bounded
// compute pool and HTTP surface behind cmd/partsrv, plus the HTTP server
// lifecycle helper shared with cmd/seamsim.
//
// See DESIGN.md "Partition service" for the cache-key canonicalization, the
// singleflight protocol and the degradation ladder.
package service

import (
	"context"
	"errors"
	"expvar"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"sfccube/internal/obs"
)

// Server is a managed HTTP server: it listens, serves in the background,
// records (rather than drops) the Serve error, and shuts down gracefully
// with a bounded drain. It replaces the fire-and-forget goroutine pattern
// that leaked the listener and lost serve errors in cmd/seamsim.
type Server struct {
	srv  *http.Server
	ln   net.Listener
	logf func(format string, args ...any)

	mu       sync.Mutex
	serveErr error
	done     chan struct{}
}

// Listen binds addr (":0" picks a free port), starts serving h in the
// background, and returns the managed server. Serve failures are logged
// through logf (nil means the standard logger) the moment they happen and
// are also surfaced by Err and Shutdown. The caller owns the shutdown:
// always call Shutdown, even after a serve error (it is idempotent enough
// to be deferred).
func Listen(addr string, h http.Handler, logf func(format string, args ...any)) (*Server, error) {
	if logf == nil {
		logf = log.Printf
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		srv:  &http.Server{Handler: h},
		ln:   ln,
		logf: logf,
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.mu.Lock()
			s.serveErr = err
			s.mu.Unlock()
			s.logf("service: http server on %s: %v", ln.Addr(), err)
		}
	}()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns "http://<bound address>".
func (s *Server) URL() string { return "http://" + s.Addr() }

// Done returns a channel closed when the serve loop has exited — after a
// Shutdown, or on a serve failure (check Err). Daemons select on it to
// notice the server dying underneath them.
func (s *Server) Done() <-chan struct{} { return s.done }

// Err returns the serve error, if any, recorded so far. nil while the
// server is healthy or after a clean shutdown.
func (s *Server) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.serveErr
}

// Shutdown gracefully drains in-flight requests, waiting at most timeout
// (<= 0 means wait as long as ctx allows) before force-closing the
// remaining connections. It blocks until the serve loop has exited and
// returns the serve error if one occurred, otherwise the shutdown error.
func (s *Server) Shutdown(ctx context.Context, timeout time.Duration) error {
	sctx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	shutErr := s.srv.Shutdown(sctx)
	if shutErr != nil {
		// Graceful drain timed out or was cancelled: force-close so the
		// serve loop (and therefore <-s.done) is guaranteed to finish.
		_ = s.srv.Close()
	}
	<-s.done
	if err := s.Err(); err != nil {
		return err
	}
	return shutErr
}

// expvarReg backs the process-wide "sfccube" expvar: expvar.Publish panics
// on a duplicate name, so the var is published once and reads whichever
// registry was attached last (nil-safe — a nil registry snapshots empty).
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[obs.Registry]
)

// AttachObs mounts the standard observability surfaces on mux: the
// Prometheus text exposition of reg on /metrics, the process expvars (with
// the registry snapshot under the "sfccube" var) on /debug/vars, and the
// pprof handlers under /debug/pprof/. Shared by cmd/seamsim and
// cmd/partsrv so both daemons expose identical debug surfaces.
func AttachObs(mux *http.ServeMux, reg *obs.Registry) {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("sfccube", expvar.Func(func() any { return expvarReg.Load().Snapshot() }))
	})
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
