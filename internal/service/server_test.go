package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

func TestServerLifecycle(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/ping", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "pong")
	})
	srv, err := Listen("127.0.0.1:0", mux, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL() + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "pong\n" {
		t.Fatalf("ping: %q", b)
	}
	if err := srv.Shutdown(context.Background(), 5*time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := srv.Err(); err != nil {
		t.Fatalf("serve error after clean shutdown: %v", err)
	}
	// The port must actually be released.
	if _, err := http.Get(srv.URL() + "/ping"); err == nil {
		t.Error("server still answering after Shutdown")
	}
}

// TestServerShutdownDrainsInflight: a request in flight when Shutdown is
// called must complete, not be cut off.
func TestServerShutdownDrains(t *testing.T) {
	inHandler := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(inHandler)
		<-release
		fmt.Fprintln(w, "done")
	})
	srv, err := Listen("127.0.0.1:0", mux, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 1)
	go func() {
		resp, err := http.Get(srv.URL() + "/slow")
		if err != nil {
			got <- "error: " + err.Error()
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		got <- string(b)
	}()
	<-inHandler
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(context.Background(), 10*time.Second) }()
	// Shutdown must be waiting on the in-flight request, not killing it.
	select {
	case err := <-shutdownDone:
		t.Fatalf("shutdown returned (%v) while a request was in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if body := <-got; body != "done\n" {
		t.Fatalf("in-flight request got %q, want %q", body, "done\n")
	}
}

// TestServerShutdownTimeoutForcesClose: when the drain budget expires the
// helper must force-close instead of hanging forever — the regression the
// seamsim leak fix is about.
func TestServerShutdownTimeoutForcesClose(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	inHandler := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/stuck", func(w http.ResponseWriter, _ *http.Request) {
		close(inHandler)
		<-release
	})
	srv, err := Listen("127.0.0.1:0", mux, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		resp, err := http.Get(srv.URL() + "/stuck")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-inHandler
	start := time.Now()
	err = srv.Shutdown(context.Background(), 50*time.Millisecond)
	if err == nil {
		t.Error("shutdown reported success despite an undrainable connection")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("shutdown blocked %v despite its 50ms budget", elapsed)
	}
}

// TestServerServeErrorRecorded: a serve failure must be logged and surfaced
// through Err/Shutdown, never silently dropped.
func TestServerServeErrorRecorded(t *testing.T) {
	var logged atomic.Int32
	srv, err := Listen("127.0.0.1:0", http.NewServeMux(), func(format string, args ...any) {
		logged.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Yank the listener out from under Serve to force an accept error.
	srv.ln.Close()
	select {
	case <-srv.done:
	case <-time.After(5 * time.Second):
		t.Fatal("serve loop did not exit after listener close")
	}
	if srv.Err() == nil {
		t.Error("serve error not recorded")
	}
	if logged.Load() == 0 {
		t.Error("serve error not logged")
	}
	if err := srv.Shutdown(context.Background(), time.Second); err == nil {
		t.Error("Shutdown swallowed the serve error")
	}
}

func TestListenBadAddr(t *testing.T) {
	if _, err := Listen("256.256.256.256:99999", nil, nil); err == nil {
		t.Error("bad address accepted")
	}
}
