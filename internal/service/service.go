package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"time"

	"sfccube/internal/graph"
	"sfccube/internal/mesh"
	"sfccube/internal/obs"
	"sfccube/internal/partition"
	"sfccube/internal/resilience"
	"sfccube/internal/weights"
)

// Request is the wire form of a partition request. Seed and MaxLB are
// pointers so that "absent" and "zero" stay distinguishable at the HTTP
// boundary (the same conflation the resilience layer was just cured of):
// an absent field takes the documented default, an explicit 0 means 0.
type Request struct {
	// Ne is the cube-face edge dimension; the mesh has 6*Ne*Ne elements.
	Ne int `json:"ne"`
	// NParts is the number of partitions, in [1, 6*Ne*Ne].
	NParts int `json:"nparts"`
	// Method is the partitioner: "auto" (quality-first fallback chain,
	// the default), "kway", "rb", "sfc" or "serpentine". Aliases: "" =
	// auto, "metis" = kway, "serp" = serpentine.
	Method string `json:"method,omitempty"`
	// Seed seeds the METIS-style methods (absent = resilience.DefaultSeed).
	// Ignored — and canonicalized away — for the deterministic seedless
	// methods sfc and serpentine.
	Seed *int64 `json:"seed,omitempty"`
	// MaxLB is the accepted load balance LB(nelemd): absent =
	// resilience.DefaultMaxLB, 0 = perfect balance only, negative =
	// accept anything.
	MaxLB *float64 `json:"max_lb,omitempty"`
	// DeadlineMS is the compute budget in milliseconds: 0 = the server
	// default, > 0 = that budget, < 0 = already expired (the request
	// jumps straight to the O(K) degradation ladder and is marked
	// degraded). The deadline never fails a request — it only lowers the
	// quality of the answer.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// WeightsSpec selects a per-element computation-weight generator in the
	// internal/weights grammar ("cfl", "hv:amp=16,m=6", ...); every chain
	// link then balances total element weight instead of counts. Absent or
	// "uniform" means unit cost. The spec is normalised to its canonical
	// spelling before it enters the cache key, so equivalent spellings
	// share one entry.
	WeightsSpec string `json:"weights_spec,omitempty"`
}

// canonicalRequest is a Request after validation and normalization — the
// content whose hash addresses the cache. DeadlineMS is deliberately
// excluded: the deadline changes how long the answer may take, never what
// the answer is (degraded results are not cached).
type canonicalRequest struct {
	Ne     int
	NParts int
	Method string
	Seed   int64
	MaxLB  float64
	// Weights is the canonical weight-spec spelling; "" means uniform (the
	// absent and "uniform" spellings both canonicalize to it).
	Weights string
}

// key returns the content address: the SHA-256 of the canonical encoding.
func (c canonicalRequest) key() string {
	h := sha256.Sum256([]byte(fmt.Sprintf(
		"ne=%d&nparts=%d&method=%s&seed=%d&max_lb=%s&weights=%s",
		c.Ne, c.NParts, c.Method, c.Seed,
		strconv.FormatFloat(c.MaxLB, 'g', -1, 64), c.Weights)))
	return hex.EncodeToString(h[:])
}

// methodChains maps each canonical method to its degradation ladder: the
// requested strategy first, then progressively cheaper strategies ending in
// one that cannot fail. "auto" uses resilience.DefaultChain.
var methodChains = map[string][]resilience.Strategy{
	"auto":       resilience.DefaultChain,
	"kway":       {resilience.StrategyKWay, resilience.StrategyRB, resilience.StrategySFC, resilience.StrategySerpentine},
	"rb":         {resilience.StrategyRB, resilience.StrategySFC, resilience.StrategySerpentine},
	"sfc":        {resilience.StrategySFC, resilience.StrategySerpentine},
	"serpentine": {resilience.StrategySerpentine},
}

// seedless reports whether the method ignores Seed (deterministic SFC
// constructions); their canonical seed is 0 so requests differing only in
// seed share one cache entry.
func seedless(method string) bool { return method == "sfc" || method == "serpentine" }

var methodAliases = map[string]string{"": "auto", "metis": "kway", "serp": "serpentine", "tv": "kway"}

// BadRequestError reports a request rejected by validation; the HTTP layer
// maps it to 400.
type BadRequestError struct{ Reason string }

func (e *BadRequestError) Error() string { return "service: bad request: " + e.Reason }

// Response is a completed partition request. It is exactly the bytes the
// cache stores: everything in it is a pure function of the canonical
// request, except Degraded/Attempts, which only ever appear on uncached
// (deadline-pressured) answers.
type Response struct {
	// Key is the content address of the canonical request.
	Key string `json:"key"`
	// Ne, NParts, Method and Seed echo the canonical request.
	Ne     int    `json:"ne"`
	NParts int    `json:"nparts"`
	Method string `json:"method"`
	Seed   int64  `json:"seed"`
	// WeightsSpec echoes the canonical weight-spec spelling; absent on
	// unit-cost requests.
	WeightsSpec string `json:"weights_spec,omitempty"`
	// Strategy is the fallback-chain link that produced the partition
	// (equal to the requested method unless the chain degraded past it).
	Strategy string `json:"strategy"`
	// Degraded marks a result produced under deadline pressure: at least
	// one higher-quality link was cancelled by the compute budget.
	// Degraded responses are never cached.
	Degraded bool `json:"degraded,omitempty"`
	// Attempts lists the abandoned chain links, in order.
	Attempts []string `json:"attempts,omitempty"`
	// BreakerSkipped lists chain links short-circuited by an open circuit
	// breaker before any attempt. Like Degraded it reflects transient
	// server state, so responses carrying it are never cached.
	BreakerSkipped []string `json:"breaker_skipped,omitempty"`
	// Stats are the paper's Table-2 quality metrics for the partition.
	Stats partition.Stats `json:"stats"`
	// Assignment maps element id → part.
	Assignment []int32 `json:"assignment,omitempty"`
}

// Meta is the per-call envelope around a response payload: everything that
// varies between two requests for the same content.
type Meta struct {
	CacheHit bool
	Shared   bool // joined another caller's in-flight computation
	Degraded bool
	// BreakerOpen marks a response computed with at least one chain link
	// short-circuited by an open breaker.
	BreakerOpen bool
	Elapsed     time.Duration
}

// Config sizes a Service. Zero values take the documented defaults.
type Config struct {
	// MaxNe bounds accepted problem sizes (memory guard; default 128,
	// i.e. ~98k elements).
	MaxNe int
	// Workers bounds concurrent partition computations (default
	// GOMAXPROCS).
	Workers int
	// CacheBytes / CacheEntries bound the response cache (defaults 64 MiB
	// / 4096 entries).
	CacheBytes   int64
	CacheEntries int
	// DefaultDeadline is the compute budget applied when a request
	// carries none; 0 means unbounded.
	DefaultDeadline time.Duration
	// LargeNe is the threshold at or above which a request enters the
	// large-problem regime: the mesh keeps its adjacency deferred (O(Ne)
	// index instead of O(Ne^2) neighbour tables), "auto" resolves to the
	// SFC-first chain (linear-time cuts instead of multilevel refinement)
	// and LargeDeadline applies. Default 256 (393k elements); negative
	// disables the regime entirely.
	LargeNe int
	// LargeDeadline is the compute budget for large-regime requests that
	// carry none; 0 falls back to DefaultDeadline.
	LargeDeadline time.Duration
	// QueueDepth bounds how many computations may wait for a worker before
	// new arrivals are shed with a 429. 0 means the default 64; negative
	// means no waiting at all (shed the moment the pool is busy).
	QueueDepth int
	// RetryAfter is the back-off hint attached to shed responses
	// (default 1s).
	RetryAfter time.Duration
	// BreakerFailures is the consecutive-failure count that trips a
	// per-method circuit breaker on the multilevel strategies (KWAY, RB).
	// 0 means the default 5; negative disables the breakers.
	BreakerFailures int
	// BreakerLatency is the per-computation latency budget; a successful
	// compute slower than this counts as a breaker failure. 0 disables the
	// latency trip.
	BreakerLatency time.Duration
	// BreakerCooldown is how long a tripped breaker stays open before
	// admitting a half-open probe (default 2s).
	BreakerCooldown time.Duration
	// DefaultWeights is the weight spec (internal/weights grammar) applied
	// to requests that carry no weights_spec — the server's default load
	// model. Empty means uniform cost. The value must parse; partsrv
	// validates it at startup. An explicit "uniform" on a request always
	// overrides it back to unit cost.
	DefaultWeights string
	// Registry receives the service metrics; nil disables them (nil-safe
	// handles).
	Registry *obs.Registry
}

// Service is the partition engine: canonicalize → cache → singleflight →
// bounded compute with graceful degradation. One instance serves all
// endpoints of a partsrv process.
type Service struct {
	cfg       Config
	cache     *Cache
	flight    flightGroup
	adm       *admitter
	estimates map[string]*latEstimator
	breakers  map[resilience.Strategy]*resilience.Breaker

	reqs          *obs.Counter
	computations  *obs.Counter
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	sfShared      *obs.Counter
	degraded      *obs.Counter
	failures      *obs.Counter
	large         *obs.Counter
	shedFull      *obs.Counter
	shedDeadline  *obs.Counter
	shedCancelled *obs.Counter
	computeNs     *obs.Histogram
	cacheBytes    *obs.Gauge
	cacheEntries  *obs.Gauge
}

// NewService builds a Service from cfg.
func NewService(cfg Config) *Service {
	if cfg.MaxNe <= 0 {
		cfg.MaxNe = 128
	}
	if cfg.LargeNe == 0 {
		cfg.LargeNe = 256
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	queueDepth := cfg.QueueDepth
	if queueDepth == 0 {
		queueDepth = 64
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	breakerFailures := cfg.BreakerFailures
	if breakerFailures == 0 {
		breakerFailures = 5
	}
	breakerCooldown := cfg.BreakerCooldown
	if breakerCooldown <= 0 {
		breakerCooldown = 2 * time.Second
	}
	reg := cfg.Registry
	reg.Help("partsrv_requests_total", "Partition requests accepted by the engine (all endpoints).")
	reg.Help("partsrv_computations_total", "Partition computations actually executed (cache misses that won the singleflight).")
	reg.Help("partsrv_cache_hits_total", "Requests answered from the content-addressed cache.")
	reg.Help("partsrv_cache_misses_total", "Requests that missed the cache.")
	reg.Help("partsrv_singleflight_shared_total", "Requests that joined another caller's in-flight computation.")
	reg.Help("partsrv_degraded_total", "Responses produced under deadline pressure (fallback past the requested method).")
	reg.Help("partsrv_failures_total", "Requests that failed after validation (exhausted chains, internal errors).")
	reg.Help("partsrv_large_total", "Computations routed through the large-problem regime (deferred mesh, SFC-first auto chain).")
	reg.Help("partsrv_compute_ns", "Wall time of executed partition computations.")
	reg.Help("partsrv_cache_bytes", "Current response-cache payload size.")
	reg.Help("partsrv_cache_entries", "Current response-cache entry count.")
	reg.Help("partsrv_queue_depth", "Computations currently waiting for a worker slot.")
	reg.Help("partsrv_queue_wait_ns", "Time admitted computations spent queued for a worker.")
	reg.Help("partsrv_shed_total", "Requests shed by admission control, by reason (queue_full, deadline, cancelled).")
	reg.Help("partsrv_breaker_state", "Per-method circuit-breaker state (0 closed, 1 open, 2 half-open).")
	reg.Help("partsrv_breaker_transitions_total", "Circuit-breaker state transitions, by method and target state.")
	reg.Help("partsrv_breaker_short_circuits_total", "Chain links skipped because their breaker was open.")
	reg.Help("partsrv_admission_p50_ns", "Observed median compute service time, by route (admission shed threshold).")
	s := &Service{
		cfg:   cfg,
		cache: NewCache(cfg.CacheBytes, cfg.CacheEntries),
		adm: newAdmitter(cfg.Workers, queueDepth, cfg.RetryAfter,
			reg.Gauge("partsrv_queue_depth"), reg.Histogram("partsrv_queue_wait_ns")),
		estimates:     make(map[string]*latEstimator, len(methodChains)),
		reqs:          reg.Counter("partsrv_requests_total"),
		computations:  reg.Counter("partsrv_computations_total"),
		cacheHits:     reg.Counter("partsrv_cache_hits_total"),
		cacheMisses:   reg.Counter("partsrv_cache_misses_total"),
		sfShared:      reg.Counter("partsrv_singleflight_shared_total"),
		degraded:      reg.Counter("partsrv_degraded_total"),
		failures:      reg.Counter("partsrv_failures_total"),
		large:         reg.Counter("partsrv_large_total"),
		shedFull:      reg.Counter("partsrv_shed_total", "reason", "queue_full"),
		shedDeadline:  reg.Counter("partsrv_shed_total", "reason", "deadline"),
		shedCancelled: reg.Counter("partsrv_shed_total", "reason", "cancelled"),
		computeNs:     reg.Histogram("partsrv_compute_ns"),
		cacheBytes:    reg.Gauge("partsrv_cache_bytes"),
		cacheEntries:  reg.Gauge("partsrv_cache_entries"),
	}
	for method := range methodChains {
		s.estimates[method] = &latEstimator{}
	}
	if breakerFailures > 0 {
		s.breakers = make(map[resilience.Strategy]*resilience.Breaker, 2)
		for _, st := range []resilience.Strategy{resilience.StrategyKWay, resilience.StrategyRB} {
			method := string(st)
			stateGauge := reg.Gauge("partsrv_breaker_state", "method", method)
			s.breakers[st] = resilience.NewBreaker(resilience.BreakerConfig{
				FailureThreshold: breakerFailures,
				LatencyBudget:    cfg.BreakerLatency,
				Cooldown:         breakerCooldown,
				OnTransition: func(_, to resilience.BreakerState) {
					stateGauge.Set(int64(to))
					reg.Counter("partsrv_breaker_transitions_total", "method", method, "to", to.String()).Inc()
				},
			})
		}
	}
	return s
}

// Registry returns the metrics registry the service was built with (may be
// nil).
func (s *Service) Registry() *obs.Registry { return s.cfg.Registry }

// canonicalize validates req against the service bounds and resolves the
// absent-vs-zero fields into the canonical form.
func (s *Service) canonicalize(req Request) (canonicalRequest, error) {
	method := req.Method
	if a, ok := methodAliases[method]; ok {
		method = a
	}
	if _, ok := methodChains[method]; !ok {
		return canonicalRequest{}, &BadRequestError{Reason: fmt.Sprintf("unknown method %q", req.Method)}
	}
	if req.Ne < 1 {
		return canonicalRequest{}, &BadRequestError{Reason: fmt.Sprintf("ne=%d out of range [1,%d]", req.Ne, s.cfg.MaxNe)}
	}
	if req.Ne > s.cfg.MaxNe {
		return canonicalRequest{}, &BadRequestError{Reason: fmt.Sprintf("ne=%d exceeds this server's limit %d", req.Ne, s.cfg.MaxNe)}
	}
	k := 6 * req.Ne * req.Ne
	if req.NParts < 1 || req.NParts > k {
		return canonicalRequest{}, &BadRequestError{Reason: fmt.Sprintf("nparts=%d out of range [1,%d] for ne=%d", req.NParts, k, req.Ne)}
	}
	seed := resilience.DefaultSeed
	if req.Seed != nil {
		seed = *req.Seed
	}
	if seedless(method) {
		seed = 0 // sfc/serpentine are deterministic: all seeds share one entry
	}
	maxLB := resilience.DefaultMaxLB
	if req.MaxLB != nil {
		maxLB = *req.MaxLB
	}
	if math.IsNaN(maxLB) || math.IsInf(maxLB, 0) {
		return canonicalRequest{}, &BadRequestError{Reason: "max_lb must be finite"}
	}
	if maxLB < 0 {
		maxLB = -1 // every "accept anything" spelling is the same content
	}
	rawSpec := req.WeightsSpec
	if rawSpec == "" {
		rawSpec = s.cfg.DefaultWeights
	}
	wspec, err := weights.Parse(rawSpec)
	if err != nil {
		return canonicalRequest{}, &BadRequestError{Reason: "weights_spec: " + err.Error()}
	}
	ws := ""
	if !wspec.IsUniform() {
		ws = wspec.String()
	}
	return canonicalRequest{Ne: req.Ne, NParts: req.NParts, Method: method, Seed: seed, MaxLB: maxLB, Weights: ws}, nil
}

// Partition answers req: from the cache when possible, otherwise by joining
// or starting a singleflight computation on the bounded worker pool. The
// returned payload is the JSON-encoded Response (shared cache bytes — do
// not modify).
//
// ctx cancellation is deliberately decoupled from the computation: once a
// computation starts it runs to its own deadline, so a caller disconnect
// cannot abort a result other waiters (or the cache) want.
func (s *Service) Partition(ctx context.Context, req Request) ([]byte, Meta, error) {
	start := time.Now()
	canon, err := s.canonicalize(req)
	if err != nil {
		return nil, Meta{}, err
	}
	s.reqs.Inc()
	key := canon.key()
	if b, ok := s.cache.Get(key); ok {
		s.cacheHits.Inc()
		return b, Meta{CacheHit: true, Elapsed: time.Since(start)}, nil
	}
	s.cacheMisses.Inc()

	v, shared, err := s.flight.Do(key, func() (any, error) {
		// Double-check under the flight: a previous flight for this key may
		// have filled the cache between our Get and Do.
		if b, ok := s.cache.Get(key); ok {
			return computed{payload: b}, nil
		}
		out, err := s.compute(ctx, canon, key, req.DeadlineMS)
		if err != nil {
			return nil, err
		}
		// Only pure-function-of-the-request answers are cacheable; both
		// degradation and breaker short-circuits reflect transient server
		// state.
		if !out.degraded && len(out.breakerSkipped) == 0 {
			s.cache.Put(key, out.payload)
			s.cacheBytes.Set(s.cache.Bytes())
			s.cacheEntries.Set(int64(s.cache.Len()))
		}
		return out, nil
	})
	if shared {
		s.sfShared.Inc()
	}
	if err != nil {
		if !isShed(err) {
			// Sheds are deliberate back-pressure, already counted under
			// partsrv_shed_total; failures_total stays a true error signal.
			s.failures.Inc()
		}
		return nil, Meta{Shared: shared}, err
	}
	out := v.(computed)
	if out.degraded {
		s.degraded.Inc()
	}
	return out.payload, Meta{
		Shared:      shared,
		Degraded:    out.degraded,
		BreakerOpen: len(out.breakerSkipped) > 0,
		Elapsed:     time.Since(start),
	}, nil
}

// computed is one computation's outcome as it travels through the
// singleflight: the encoded payload plus the transient-state markers that
// veto caching.
type computed struct {
	payload        []byte
	degraded       bool
	breakerSkipped []string
}

// isLarge reports whether ne falls in the large-problem regime.
func (s *Service) isLarge(ne int) bool { return s.cfg.LargeNe > 0 && ne >= s.cfg.LargeNe }

// compute runs one partition computation on the worker pool and encodes the
// response. The compute context is detached from the caller (see Partition)
// and bounded by the request deadline, the server default, or nothing.
// deadlineMS < 0 starts with the budget already spent — the degradation
// ladder's fast path.
//
// Requests at or above Config.LargeNe take the large-problem path: the mesh
// defers its neighbour tables (the SFC strategies never read them, and the
// graph build streams rows on the fly), "auto" starts at SFC instead of the
// multilevel methods, and LargeDeadline bounds the work. The routing depends
// only on (Ne, server config), so cached answers stay deterministic; it is
// not deadline degradation and does not mark the response Degraded.
func (s *Service) compute(ctx context.Context, canon canonicalRequest, key string, deadlineMS int64) (computed, error) {
	if err := s.admit(ctx, canon.Method); err != nil {
		return computed{}, err
	}
	defer s.adm.release()

	large := s.isLarge(canon.Ne)
	cctx := context.WithoutCancel(ctx)
	var cancel context.CancelFunc
	switch {
	case deadlineMS < 0:
		cctx, cancel = context.WithDeadline(cctx, time.Unix(0, 0))
	case deadlineMS > 0:
		cctx, cancel = context.WithTimeout(cctx, time.Duration(deadlineMS)*time.Millisecond)
	case large && s.cfg.LargeDeadline > 0:
		cctx, cancel = context.WithTimeout(cctx, s.cfg.LargeDeadline)
	case s.cfg.DefaultDeadline > 0:
		cctx, cancel = context.WithTimeout(cctx, s.cfg.DefaultDeadline)
	default:
		cancel = func() {}
	}
	defer cancel()

	// Chaos compute stall: injected by ChaosMiddleware as a context value so
	// it survives the WithoutCancel detachment. The select is on the compute
	// context — a client disconnect cannot cut the stall short, only the
	// compute budget can, exactly as with genuinely slow work.
	if d := computeStallFrom(ctx); d > 0 {
		stall := time.NewTimer(d)
		select {
		case <-stall.C:
		case <-cctx.Done():
			stall.Stop()
		}
	}

	t0 := time.Now()
	m, err := mesh.NewAuto(canon.Ne)
	if err != nil {
		return computed{}, err
	}
	g, err := graph.FromMesh(m, graph.DefaultOptions())
	if err != nil {
		return computed{}, err
	}
	var w []int64
	if canon.Weights != "" {
		// The canonical spelling always re-parses; the generated vector is a
		// pure function of (mesh, spec), so it belongs in the cached content.
		wspec, err := weights.Parse(canon.Weights)
		if err != nil {
			return computed{}, err
		}
		w = wspec.Generate(m)
		w32, err := weights.Int32(w)
		if err != nil {
			return computed{}, err
		}
		if err := g.SetVertexWeights(w32); err != nil {
			return computed{}, err
		}
	}
	spec := resilience.NewFallbackSpec(canon.Ne, canon.NParts)
	spec.Seed = canon.Seed
	spec.MaxLB = canon.MaxLB
	spec.Weights = w
	chain := methodChains[canon.Method]
	if large {
		s.large.Inc()
		if canon.Method == "auto" {
			chain = resilience.RepartitionChain
		}
	}
	chain, skipped, probing := s.filterChain(chain)
	spec.Chain = chain
	spec.Mesh, spec.Graph = m, g
	res, err := resilience.PartitionWithFallback(cctx, spec)
	elapsed := time.Since(t0)
	if err != nil {
		s.recordBreakers(probing, nil, elapsed, err)
		return computed{}, err
	}
	s.recordBreakers(probing, res, elapsed, nil)
	st, err := partition.ComputeStatsWeighted(g, res.Partition, w)
	if err != nil {
		return computed{}, err
	}
	s.computations.Inc()
	s.computeNs.Observe(elapsed.Nanoseconds())

	resp := Response{
		Key: key, Ne: canon.Ne, NParts: canon.NParts, Method: canon.Method,
		Seed: res.Seed, Strategy: string(res.Strategy), WeightsSpec: canon.Weights,
		Stats: st, Assignment: res.Partition.Assignment(),
		BreakerSkipped: skipped,
	}
	for _, a := range res.Attempts {
		resp.Attempts = append(resp.Attempts, fmt.Sprintf("%s(seed %d): %v", a.Strategy, a.Seed, a.Err))
		if errors.Is(a.Err, context.DeadlineExceeded) || errors.Is(a.Err, context.Canceled) {
			resp.Degraded = true
		}
	}
	if !resp.Degraded && len(skipped) == 0 {
		// Feed the admission estimator only with representative samples:
		// degraded and short-circuited computations are cheaper than the
		// route's true cost and would bias the shed threshold down.
		est := s.estimates[canon.Method]
		est.observe(elapsed)
		s.cfg.Registry.Gauge("partsrv_admission_p50_ns", "route", canon.Method).Set(int64(est.p50()))
	}
	b, err := json.Marshal(resp)
	if err != nil {
		return computed{}, err
	}
	return computed{payload: b, degraded: resp.Degraded, breakerSkipped: skipped}, nil
}

// filterChain removes chain links whose breaker refuses the call, returning
// the surviving chain, the skipped link names, and the set of links that
// consumed a breaker Allow (and therefore owe a Record or Cancel). The
// SFC-family links carry no breaker, so a chain never filters to empty.
func (s *Service) filterChain(chain []resilience.Strategy) ([]resilience.Strategy, []string, map[resilience.Strategy]bool) {
	if len(s.breakers) == 0 {
		return chain, nil, nil
	}
	kept := make([]resilience.Strategy, 0, len(chain))
	var skipped []string
	probing := make(map[resilience.Strategy]bool)
	for _, st := range chain {
		if br := s.breakers[st]; br != nil {
			if !br.Allow() {
				skipped = append(skipped, string(st))
				s.cfg.Registry.Counter("partsrv_breaker_short_circuits_total", "method", string(st)).Inc()
				continue
			}
			probing[st] = true
		}
		kept = append(kept, st)
	}
	return kept, skipped, probing
}

// recordBreakers settles every breaker Allow consumed by filterChain: the
// winning strategy records a success with its latency, abandoned attempts
// record their failures, and links the chain never reached hand their
// half-open probe slot back with Cancel (otherwise a probe reserved for a
// link answered upstream would wedge the breaker half-open forever).
func (s *Service) recordBreakers(probing map[resilience.Strategy]bool, res *resilience.FallbackResult, elapsed time.Duration, chainErr error) {
	if len(probing) == 0 {
		return
	}
	recorded := make(map[resilience.Strategy]bool, len(probing))
	if res != nil && probing[res.Strategy] {
		s.breakers[res.Strategy].Record(elapsed, nil)
		recorded[res.Strategy] = true
	}
	if res != nil {
		for _, a := range res.Attempts {
			if probing[a.Strategy] && !recorded[a.Strategy] {
				s.breakers[a.Strategy].Record(0, a.Err)
				recorded[a.Strategy] = true
			}
		}
	}
	for st := range probing {
		if recorded[st] {
			continue
		}
		if chainErr != nil {
			// The whole chain failed: every admitted link shares the blame.
			s.breakers[st].Record(0, chainErr)
		} else {
			s.breakers[st].Cancel()
		}
	}
}
