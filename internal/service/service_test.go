package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"sfccube/internal/check"
	"sfccube/internal/graph"
	"sfccube/internal/mesh"
	"sfccube/internal/obs"
	"sfccube/internal/partition"
	"sfccube/internal/resilience"
)

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	return NewService(cfg)
}

func counter(t *testing.T, s *Service, name string) float64 {
	t.Helper()
	return s.Registry().Snapshot()[name]
}

func decodeResponse(t *testing.T, payload []byte) Response {
	t.Helper()
	var resp Response
	if err := json.Unmarshal(payload, &resp); err != nil {
		t.Fatalf("response payload does not decode: %v", err)
	}
	return resp
}

// validate checks the response's assignment with the independent oracle.
func validate(t *testing.T, resp Response) {
	t.Helper()
	m, err := mesh.New(resp.Ne)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromMesh(m, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.FromAssignment(resp.Assignment, resp.NParts)
	if err != nil {
		t.Fatalf("assignment does not form a partition: %v", err)
	}
	if err := check.ValidatePartition(g, p); err != nil {
		t.Fatalf("oracle rejects partition: %v", err)
	}
}

// TestThunderingHerd is the acceptance criterion: 64 concurrent identical
// requests must trigger exactly one underlying partition computation —
// verified through the service's own obs counters — and every caller must
// receive the same bytes.
func TestThunderingHerd(t *testing.T) {
	s := newTestService(t, Config{})
	req := Request{Ne: 8, NParts: 16, Method: "kway"}

	const n = 64
	var wg sync.WaitGroup
	payloads := make([][]byte, n)
	errs := make([]error, n)
	start := make(chan struct{})
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			<-start
			payloads[i], _, errs[i] = s.Partition(context.Background(), req)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !bytes.Equal(payloads[i], payloads[0]) {
			t.Fatalf("caller %d received different bytes", i)
		}
	}
	if got := counter(t, s, "partsrv_computations_total"); got != 1 {
		t.Errorf("partsrv_computations_total = %v, want exactly 1", got)
	}
	if got := counter(t, s, "partsrv_requests_total"); got != n {
		t.Errorf("partsrv_requests_total = %v, want %d", got, n)
	}
	// Every non-computing caller was answered by the cache or by joining
	// the flight; none may have slipped through to a second computation.
	hits := counter(t, s, "partsrv_cache_hits_total")
	shared := counter(t, s, "partsrv_singleflight_shared_total")
	if hits+shared < n-1 {
		t.Errorf("hits(%v) + shared(%v) < %d: some caller neither hit nor joined", hits, shared, n-1)
	}
	validate(t, decodeResponse(t, payloads[0]))

	// A second round of the same request is now a pure cache hit.
	payload, meta, err := s.Partition(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !meta.CacheHit || !bytes.Equal(payload, payloads[0]) {
		t.Errorf("follow-up request missed the cache (meta=%+v)", meta)
	}
	if got := counter(t, s, "partsrv_computations_total"); got != 1 {
		t.Errorf("follow-up recomputed: partsrv_computations_total = %v", got)
	}
}

// TestDeadlineExpiredDegraded is the other acceptance criterion: a request
// whose compute budget is already spent must still produce a valid
// partition — the O(K) SFC/serpentine ladder — marked degraded, and the
// degraded answer must not poison the cache.
func TestDeadlineExpiredDegraded(t *testing.T) {
	s := newTestService(t, Config{})
	req := Request{Ne: 8, NParts: 16, Method: "kway", DeadlineMS: -1}
	payload, meta, err := s.Partition(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Degraded {
		t.Fatal("expired deadline not marked degraded")
	}
	resp := decodeResponse(t, payload)
	if !resp.Degraded {
		t.Error("response body lacks degraded marker")
	}
	if resp.Strategy != string(resilience.StrategySFC) && resp.Strategy != string(resilience.StrategySerpentine) {
		t.Errorf("degraded strategy %s, want SFC or SERPENTINE", resp.Strategy)
	}
	if len(resp.Attempts) == 0 {
		t.Error("degraded response records no abandoned attempts")
	}
	validate(t, resp)
	if got := counter(t, s, "partsrv_degraded_total"); got != 1 {
		t.Errorf("partsrv_degraded_total = %v, want 1", got)
	}
	if s.cache.Len() != 0 {
		t.Error("degraded response was cached")
	}

	// The same request with a sane budget computes fresh (no poisoned
	// cache) and is not degraded.
	req.DeadlineMS = 0
	payload, meta, err = s.Partition(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if meta.CacheHit || meta.Degraded {
		t.Errorf("fresh request after degraded one: meta=%+v", meta)
	}
	if resp := decodeResponse(t, payload); resp.Degraded || resp.Strategy != string(resilience.StrategyKWay) {
		t.Errorf("fresh request degraded=%v strategy=%s, want clean KWAY", resp.Degraded, resp.Strategy)
	}
}

// TestCanonicalization: requests that differ only in representation must
// share one cache entry (content addressing), and requests that differ in
// content must not.
func TestCanonicalization(t *testing.T) {
	s := newTestService(t, Config{})
	ctx := context.Background()

	// sfc is seedless: any seed canonicalizes away.
	seed := int64(77)
	a, _, err := s.Partition(ctx, Request{Ne: 6, NParts: 9, Method: "sfc"})
	if err != nil {
		t.Fatal(err)
	}
	b, meta, err := s.Partition(ctx, Request{Ne: 6, NParts: 9, Method: "sfc", Seed: &seed})
	if err != nil {
		t.Fatal(err)
	}
	if !meta.CacheHit || !bytes.Equal(a, b) {
		t.Error("seed on a seedless method changed the content address")
	}

	// Method aliases canonicalize.
	c, meta, err := s.Partition(ctx, Request{Ne: 6, NParts: 9, Method: "serp"})
	if err != nil {
		t.Fatal(err)
	}
	d, meta2, err := s.Partition(ctx, Request{Ne: 6, NParts: 9, Method: "serpentine"})
	if err != nil {
		t.Fatal(err)
	}
	if meta.CacheHit || !meta2.CacheHit || !bytes.Equal(c, d) {
		t.Error("method alias serp/serpentine not canonicalized")
	}

	// Every negative max_lb spelling is the same "accept anything".
	lb1, lb2 := -1.0, -42.5
	e, _, err := s.Partition(ctx, Request{Ne: 6, NParts: 9, Method: "sfc", MaxLB: &lb1})
	if err != nil {
		t.Fatal(err)
	}
	f, meta, err := s.Partition(ctx, Request{Ne: 6, NParts: 9, Method: "sfc", MaxLB: &lb2})
	if err != nil {
		t.Fatal(err)
	}
	if !meta.CacheHit || !bytes.Equal(e, f) {
		t.Error("negative max_lb spellings not canonicalized")
	}

	// An explicit max_lb=0 is different content from the default.
	zero := 0.0
	if _, meta, err = s.Partition(ctx, Request{Ne: 6, NParts: 9, Method: "sfc", MaxLB: &zero}); err != nil {
		t.Fatal(err)
	} else if meta.CacheHit {
		t.Error("strict max_lb=0 shared a cache entry with the default gate")
	}

	// Distinct seeds on a seeded method are distinct content.
	s1, s2 := int64(1), int64(2)
	if _, _, err = s.Partition(ctx, Request{Ne: 6, NParts: 9, Method: "kway", Seed: &s1}); err != nil {
		t.Fatal(err)
	}
	if _, meta, err = s.Partition(ctx, Request{Ne: 6, NParts: 9, Method: "kway", Seed: &s2}); err != nil {
		t.Fatal(err)
	} else if meta.CacheHit {
		t.Error("distinct kway seeds shared a cache entry")
	}
}

// TestZeroSeedAndZeroMaxLBExpressible: the HTTP layer preserves the
// absent-vs-zero distinction the resilience fix made expressible.
func TestZeroSeedAndZeroMaxLBExpressible(t *testing.T) {
	s := newTestService(t, Config{})
	zeroSeed := int64(0)
	payload, _, err := s.Partition(context.Background(),
		Request{Ne: 4, NParts: 6, Method: "kway", Seed: &zeroSeed})
	if err != nil {
		t.Fatal(err)
	}
	if resp := decodeResponse(t, payload); resp.Seed != 0 {
		t.Errorf("explicit seed=0 echoed as %d", resp.Seed)
	}

	// max_lb=0 on a problem that cannot balance perfectly: the whole chain
	// is rejected (422 at the HTTP layer), not silently rewritten to 10%.
	zero := 0.0
	_, _, err = s.Partition(context.Background(),
		Request{Ne: 2, NParts: 5, Method: "auto", MaxLB: &zero})
	var ex *resilience.ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("strict max_lb=0 on 24 elements / 5 parts: got %v, want *ExhaustedError", err)
	}
}

func TestValidationErrors(t *testing.T) {
	s := newTestService(t, Config{MaxNe: 16})
	cases := []Request{
		{Ne: 0, NParts: 1},
		{Ne: -3, NParts: 1},
		{Ne: 32, NParts: 4},               // over MaxNe
		{Ne: 4, NParts: 0},                // nparts under range
		{Ne: 4, NParts: 97},               // nparts over 6*4*4
		{Ne: 4, NParts: 4, Method: "bog"}, // unknown method
	}
	for _, req := range cases {
		_, _, err := s.Partition(context.Background(), req)
		var bad *BadRequestError
		if !errors.As(err, &bad) {
			t.Errorf("request %+v: got %v, want *BadRequestError", req, err)
		}
	}
	if got := counter(t, s, "partsrv_requests_total"); got != 0 {
		t.Errorf("rejected requests counted as accepted: %v", got)
	}
}

// TestSerpentineAnyNe: Ne outside 2^n 3^m is fine for method=sfc — the
// ladder ends in serpentine, and the answer is not degraded (no deadline
// pressure was involved).
func TestSerpentineAnyNe(t *testing.T) {
	s := newTestService(t, Config{})
	payload, meta, err := s.Partition(context.Background(), Request{Ne: 5, NParts: 10, Method: "sfc"})
	if err != nil {
		t.Fatal(err)
	}
	resp := decodeResponse(t, payload)
	if resp.Strategy != string(resilience.StrategySerpentine) {
		t.Errorf("strategy %s, want SERPENTINE", resp.Strategy)
	}
	if resp.Degraded || meta.Degraded {
		t.Error("deterministic serpentine fallback marked degraded")
	}
	if len(resp.Attempts) != 1 {
		t.Errorf("attempts %v, want the single abandoned SFC link", resp.Attempts)
	}
	validate(t, resp)
	// Deterministic fallbacks ARE cacheable.
	if _, meta, err := s.Partition(context.Background(), Request{Ne: 5, NParts: 10, Method: "sfc"}); err != nil || !meta.CacheHit {
		t.Errorf("deterministic fallback not cached (meta=%+v, err=%v)", meta, err)
	}
}

// TestCacheEviction: with room for a single entry, alternating requests
// must recompute every time and the gauges must track the survivor.
func TestCacheEviction(t *testing.T) {
	s := newTestService(t, Config{CacheEntries: 1, CacheBytes: 1 << 20})
	ctx := context.Background()
	reqA := Request{Ne: 4, NParts: 6, Method: "sfc"}
	reqB := Request{Ne: 4, NParts: 8, Method: "sfc"}
	for i := 0; i < 2; i++ {
		if _, _, err := s.Partition(ctx, reqA); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Partition(ctx, reqB); err != nil {
			t.Fatal(err)
		}
	}
	if got := counter(t, s, "partsrv_computations_total"); got != 4 {
		t.Errorf("computations = %v, want 4 (every request evicted the other)", got)
	}
	if got := counter(t, s, "partsrv_cache_entries"); got != 1 {
		t.Errorf("partsrv_cache_entries = %v, want 1", got)
	}
}

func TestStatsMatchIndependentOracle(t *testing.T) {
	s := newTestService(t, Config{})
	payload, _, err := s.Partition(context.Background(), Request{Ne: 6, NParts: 8, Method: "rb"})
	if err != nil {
		t.Fatal(err)
	}
	resp := decodeResponse(t, payload)
	validate(t, resp)
	m, err := mesh.New(resp.Ne)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromMesh(m, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.FromAssignment(resp.Assignment, resp.NParts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := partition.ComputeStats(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats.EdgeCut != want.EdgeCut || resp.Stats.LBNelemd != want.LBNelemd ||
		resp.Stats.TotalCommVolume != want.TotalCommVolume {
		t.Errorf("served stats %+v disagree with recomputation %+v", resp.Stats, want)
	}
}

// TestLargeRegimeRouting: a request at or above LargeNe must route "auto"
// through the SFC-first chain (no multilevel attempt), count on the
// partsrv_large_total metric, and still produce a valid partition. A request
// below the threshold keeps the quality-first chain.
func TestLargeRegimeRouting(t *testing.T) {
	s := newTestService(t, Config{MaxNe: 64, LargeNe: 32})
	// Below threshold: auto resolves to the quality-first chain.
	payload, _, err := s.Partition(context.Background(), Request{Ne: 16, NParts: 12})
	if err != nil {
		t.Fatal(err)
	}
	if resp := decodeResponse(t, payload); resp.Strategy != string(resilience.StrategyKWay) {
		t.Errorf("small auto request used %s, want KWAY", resp.Strategy)
	}
	if got := counter(t, s, "partsrv_large_total"); got != 0 {
		t.Errorf("partsrv_large_total = %v after a small request", got)
	}
	// At threshold: auto resolves to SFC without any abandoned attempts
	// (routing, not degradation).
	payload, meta, err := s.Partition(context.Background(), Request{Ne: 32, NParts: 24})
	if err != nil {
		t.Fatal(err)
	}
	resp := decodeResponse(t, payload)
	if resp.Strategy != string(resilience.StrategySFC) {
		t.Errorf("large auto request used %s, want SFC", resp.Strategy)
	}
	if resp.Degraded || meta.Degraded || len(resp.Attempts) != 0 {
		t.Errorf("large-regime routing marked degraded: %+v", resp)
	}
	validate(t, resp)
	if got := counter(t, s, "partsrv_large_total"); got != 1 {
		t.Errorf("partsrv_large_total = %v, want 1", got)
	}
}

// TestLargeRegimeExplicitMethodUnchanged: the large regime rewires only
// "auto" — an explicit method keeps its own ladder.
func TestLargeRegimeExplicitMethodUnchanged(t *testing.T) {
	s := newTestService(t, Config{MaxNe: 64, LargeNe: 32})
	payload, _, err := s.Partition(context.Background(), Request{Ne: 32, NParts: 24, Method: "rb"})
	if err != nil {
		t.Fatal(err)
	}
	if resp := decodeResponse(t, payload); resp.Strategy != string(resilience.StrategyRB) {
		t.Errorf("explicit rb at large Ne used %s", resp.Strategy)
	}
	if got := counter(t, s, "partsrv_large_total"); got != 1 {
		t.Errorf("partsrv_large_total = %v, want 1 (explicit methods still count)", got)
	}
}

// TestLargeRegimeDisabled: negative LargeNe turns the regime off entirely.
func TestLargeRegimeDisabled(t *testing.T) {
	s := newTestService(t, Config{MaxNe: 64, LargeNe: -1})
	payload, _, err := s.Partition(context.Background(), Request{Ne: 32, NParts: 12})
	if err != nil {
		t.Fatal(err)
	}
	if resp := decodeResponse(t, payload); resp.Strategy != string(resilience.StrategyKWay) {
		t.Errorf("regime disabled but auto used %s", resp.Strategy)
	}
	if got := counter(t, s, "partsrv_large_total"); got != 0 {
		t.Errorf("partsrv_large_total = %v with regime disabled", got)
	}
}
