package service

import "sync"

// flightGroup collapses concurrent calls with the same key into one
// execution whose result every caller shares — the classic singleflight
// protocol, implemented locally because the repo takes no external
// dependencies. Unlike a cache it holds results only while a call is in
// flight; pair it with Cache for the "same request → cached bytes" layer.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg   sync.WaitGroup
	dups int // callers that joined this flight (guarded by the group mutex)
	val  any
	err  error
}

// waiters returns how many callers have joined the in-flight call for key
// (0 when none is in flight). Used by tests to release a held flight only
// once every expected caller has joined, making dedup assertions exact.
func (g *flightGroup) waiters(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.dups
	}
	return 0
}

// Do executes fn and returns its result, unless another call with the same
// key is already in flight, in which case it blocks and returns that call's
// result instead. shared reports whether this caller joined an existing
// flight (i.e. fn did not run on its behalf).
//
// fn runs outside the group lock; a panic in fn propagates to the executing
// caller and leaves the waiters blocked, which is acceptable here because
// every fn in this package returns errors instead of panicking.
func (g *flightGroup) Do(key string, fn func() (any, error)) (v any, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		c.dups++
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, true, c.err
	}
	c := new(flightCall)
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.val, false, c.err
}
