package service

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFlightGroupDedup(t *testing.T) {
	var g flightGroup
	var calls atomic.Int64
	gate := make(chan struct{})

	const n = 32
	var wg sync.WaitGroup
	vals := make([]any, n)
	shareds := make([]bool, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			v, shared, err := g.Do("k", func() (any, error) {
				<-gate // hold the flight open until every caller joined
				calls.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i], shareds[i] = v, shared
		}(i)
	}
	// Release the executor only once all n-1 other callers are verifiably
	// waiting on its flight, so the dedup count below is exact.
	for deadline := time.Now().Add(10 * time.Second); g.waiters("k") != n-1; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d callers joined the flight", g.waiters("k"), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	nShared := 0
	for i := range vals {
		if vals[i] != 42 {
			t.Errorf("caller %d got %v", i, vals[i])
		}
		if shareds[i] {
			nShared++
		}
	}
	if nShared != n-1 {
		t.Errorf("%d callers reported shared results, want %d", nShared, n-1)
	}
}

func TestFlightGroupSequentialCallsRunEach(t *testing.T) {
	var g flightGroup
	n := 0
	for i := 0; i < 3; i++ {
		v, shared, err := g.Do("k", func() (any, error) { n++; return n, nil })
		if err != nil || shared {
			t.Fatalf("call %d: v=%v shared=%v err=%v", i, v, shared, err)
		}
		if v != i+1 {
			t.Fatalf("call %d returned %v, want %d (stale flight result?)", i, v, i+1)
		}
	}
}

func TestFlightGroupDistinctKeysIndependent(t *testing.T) {
	var g flightGroup
	var wg sync.WaitGroup
	var calls atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, _ = g.Do(string(rune('a'+i)), func() (any, error) {
				calls.Add(1)
				return nil, nil
			})
		}(i)
	}
	wg.Wait()
	if calls.Load() != 4 {
		t.Fatalf("fn ran %d times for 4 distinct keys, want 4", calls.Load())
	}
}
