package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"sfccube/internal/obs"
	"sfccube/internal/resilience"
)

// waitCounter polls the registry until name reaches want or the deadline
// passes.
func waitCounter(t *testing.T, reg *obs.Registry, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Snapshot()[name] >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s never reached %v (snapshot: %v)", name, want, reg.Snapshot()[name])
}

// drainGoroutines polls until the goroutine count returns to within slack of
// baseline.
func drainGoroutines(t *testing.T, baseline, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+slack {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d now, baseline %d (+%d slack)", runtime.NumGoroutine(), baseline, slack)
}

// TestStreamClientDisconnectMidStream: a client that reads the NDJSON
// header and hangs up must not wedge the handler, and the computed result
// must still land in the cache for the next caller.
func TestStreamClientDisconnectMidStream(t *testing.T) {
	baseline := runtime.NumGoroutine()
	reg := obs.NewRegistry()
	s := NewService(Config{Registry: reg})
	ts := httptest.NewServer(s.Handler())

	// ne=128 → 98304 assignment entries: several hundred KB over 7 chunks,
	// far beyond what socket buffers swallow before the close lands.
	resp, err := http.Get(ts.URL + "/v1/partition/stream?ne=128&nparts=12&method=sfc")
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("reading stream header: %v", err)
	}
	var hdr streamHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		t.Fatalf("stream header does not decode: %v", err)
	}
	if hdr.Chunks < 2 {
		t.Fatalf("only %d chunks — the disconnect would not interrupt anything", hdr.Chunks)
	}
	resp.Body.Close() // hang up mid-stream

	// The computation completed before streaming began, so the cache holds
	// the full response despite the disconnect.
	waitCounter(t, reg, "partsrv_cache_entries", 1)
	payload, meta, err := s.Partition(context.Background(),
		Request{Ne: 128, NParts: 12, Method: "sfc"})
	if err != nil {
		t.Fatal(err)
	}
	if !meta.CacheHit {
		t.Error("replay after disconnect missed the cache")
	}
	if got := decodeResponse(t, payload); len(got.Assignment) != 6*128*128 {
		t.Errorf("cached assignment has %d entries, want %d", len(got.Assignment), 6*128*128)
	}

	ts.Close() // waits for the aborted handler to unwind
	drainGoroutines(t, baseline, 2)
}

// TestStreamClientDisconnectMidCompute: the caller hangs up while the
// computation is still running (a chaos compute stall keeps it busy). The
// detached computation must run to completion and populate the cache; the
// handler goroutine must drain.
func TestStreamClientDisconnectMidCompute(t *testing.T) {
	baseline := runtime.NumGoroutine()
	reg := obs.NewRegistry()
	s := NewService(Config{Registry: reg})
	plan, err := resilience.ParseChaosPlan("computestall@1:300ms", 7)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(ChaosMiddleware(plan, reg, s.Handler()))

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		ts.URL+"/v1/partition/stream?ne=8&nparts=6&method=sfc", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("client outlived its 50ms budget against a 300ms stall")
	}

	// The client is gone, but the detached computation finishes and caches.
	waitCounter(t, reg, "partsrv_computations_total", 1)
	waitCounter(t, reg, "partsrv_cache_entries", 1)
	payload, meta, err := s.Partition(context.Background(),
		Request{Ne: 8, NParts: 6, Method: "sfc"})
	if err != nil {
		t.Fatal(err)
	}
	if !meta.CacheHit {
		t.Error("detached computation did not populate the cache")
	}
	validate(t, decodeResponse(t, payload))

	ts.Close()
	drainGoroutines(t, baseline, 2)
}
