package service

import (
	"context"
	"errors"
	"testing"

	"sfccube/internal/mesh"
	"sfccube/internal/partition"
	"sfccube/internal/weights"
)

// TestWeightsSpecCanonicalization pins the cache-key contract of
// weights_spec: equivalent spellings share one content address, the uniform
// spellings collapse onto the absent form, and distinct specs get distinct
// keys.
func TestWeightsSpecCanonicalization(t *testing.T) {
	s := newTestService(t, Config{})
	key := func(spec string) string {
		t.Helper()
		canon, err := s.canonicalize(Request{Ne: 8, NParts: 16, Method: "sfc", WeightsSpec: spec})
		if err != nil {
			t.Fatalf("weights_spec %q: %v", spec, err)
		}
		return canon.key()
	}
	if key("hv") != key("hyperviscosity:amp=8") {
		t.Error("equivalent hv spellings produce different cache keys")
	}
	if key("") != key("uniform") {
		t.Error("absent and explicit uniform produce different cache keys")
	}
	if key("cfl") == key("hv") {
		t.Error("distinct specs share a cache key")
	}
	if key("cfl") == key("") {
		t.Error("weighted and uniform requests share a cache key")
	}
	canon, err := s.canonicalize(Request{Ne: 8, NParts: 16, Method: "sfc", WeightsSpec: "Hyperviscosity:amp=8"})
	if err != nil {
		t.Fatal(err)
	}
	if canon.Weights != "hv" {
		t.Errorf("canonical spelling = %q, want \"hv\"", canon.Weights)
	}
}

func TestWeightsSpecValidation(t *testing.T) {
	s := newTestService(t, Config{})
	for _, spec := range []string{"nosuch", "cfl:amp=0", "hv:m=999", "uniform:amp=2"} {
		_, _, err := s.Partition(context.Background(), Request{Ne: 8, NParts: 16, WeightsSpec: spec})
		var bad *BadRequestError
		if !errors.As(err, &bad) {
			t.Errorf("weights_spec %q: got %v, want *BadRequestError", spec, err)
		}
	}
}

// TestWeightedPartitionResponse checks the weighted answer end-to-end: the
// canonical spec is echoed, the per-part weight totals agree with an
// independent recomputation from the assignment, and the weighted balance is
// the equation-(1) value over those totals.
func TestWeightedPartitionResponse(t *testing.T) {
	s := newTestService(t, Config{})
	payload, _, err := s.Partition(context.Background(),
		Request{Ne: 8, NParts: 16, Method: "sfc", WeightsSpec: "cfl:amp=16"})
	if err != nil {
		t.Fatal(err)
	}
	resp := decodeResponse(t, payload)
	if resp.WeightsSpec != "cfl:amp=16" {
		t.Errorf("response weights_spec = %q, want \"cfl:amp=16\"", resp.WeightsSpec)
	}
	validate(t, resp)
	if len(resp.Stats.PartWeights) != resp.NParts {
		t.Fatalf("response has %d part weights, want %d", len(resp.Stats.PartWeights), resp.NParts)
	}

	m, err := mesh.New(resp.Ne)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := weights.Parse(resp.WeightsSpec)
	if err != nil {
		t.Fatal(err)
	}
	w := spec.Generate(m)
	partWeights := make([]int64, resp.NParts)
	for e, p := range resp.Assignment {
		partWeights[p] += w[e]
	}
	for q, got := range resp.Stats.PartWeights {
		if got != partWeights[q] {
			t.Fatalf("part %d weight %d, independent recomputation %d", q, got, partWeights[q])
		}
	}
	if want := partition.LoadBalanceInt64(partWeights); resp.Stats.LBWeighted != want {
		t.Errorf("LBWeighted = %g, recomputed %g", resp.Stats.LBWeighted, want)
	}
}

// TestDefaultWeightsConfig covers the partsrv -weights server default: a
// request without a spec inherits it, and an explicit "uniform" overrides it
// back to unit cost.
func TestDefaultWeightsConfig(t *testing.T) {
	s := newTestService(t, Config{DefaultWeights: "cfl"})
	payload, _, err := s.Partition(context.Background(), Request{Ne: 8, NParts: 16, Method: "sfc"})
	if err != nil {
		t.Fatal(err)
	}
	if resp := decodeResponse(t, payload); resp.WeightsSpec != "cfl" {
		t.Errorf("default-weighted response weights_spec = %q, want \"cfl\"", resp.WeightsSpec)
	}
	payload, _, err = s.Partition(context.Background(),
		Request{Ne: 8, NParts: 16, Method: "sfc", WeightsSpec: "uniform"})
	if err != nil {
		t.Fatal(err)
	}
	resp := decodeResponse(t, payload)
	if resp.WeightsSpec != "" {
		t.Errorf("explicit uniform response weights_spec = %q, want absent", resp.WeightsSpec)
	}
	if resp.Stats.PartWeights != nil {
		t.Error("uniform response carries part weights")
	}
}
