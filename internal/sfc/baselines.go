package sfc

// Baseline orderings used to quantify what the Hilbert/Peano construction
// actually buys. Neither is part of the paper's algorithm; they are the
// standard comparison points in the SFC-partitioning literature (e.g.
// Pilkington & Baden 1994, which the paper builds on):
//
//   - Serpentine (boustrophedon): continuous like a space-filling curve but
//     with no hierarchical locality -- segments become long thin strips.
//   - Morton (Z-order): hierarchical locality like Hilbert but
//     discontinuous -- segments can be split across Z-jumps.

// GenerateSerpentine builds the column-major boustrophedon ordering of a
// p x p grid: up the first column, down the second, and so on. It is
// continuous for every p >= 1 and enters at (0, 0).
func GenerateSerpentine(p int) *Curve {
	c := &Curve{
		p:     p,
		order: make([]Point, 0, p*p),
		rank:  make([]int, p*p),
	}
	for x := 0; x < p; x++ {
		if x%2 == 0 {
			for y := 0; y < p; y++ {
				c.order = append(c.order, Point{x, y})
			}
		} else {
			for y := p - 1; y >= 0; y-- {
				c.order = append(c.order, Point{x, y})
			}
		}
	}
	for r, pt := range c.order {
		c.rank[pt.Y*p+pt.X] = r
	}
	return c
}

// GenerateMorton builds the Morton (Z-order) ordering of a 2^n x 2^n grid:
// the rank of cell (x, y) interleaves the bits of x and y. Morton order has
// hierarchical block locality but is not continuous: consecutive ranks can
// be far apart, which is exactly the deficiency the Hilbert curve repairs.
func GenerateMorton(levels int) *Curve {
	p := 1 << levels
	c := &Curve{
		p:     p,
		order: make([]Point, p*p),
		rank:  make([]int, p*p),
	}
	for y := 0; y < p; y++ {
		for x := 0; x < p; x++ {
			r := interleaveBits(x, y, levels)
			c.order[r] = Point{x, y}
			c.rank[y*p+x] = r
		}
	}
	return c
}

// interleaveBits computes the Morton code of (x, y) with the given number
// of bit levels: bit i of x lands at position 2i, bit i of y at 2i+1.
func interleaveBits(x, y, levels int) int {
	r := 0
	for i := 0; i < levels; i++ {
		r |= ((x >> i) & 1) << (2 * i)
		r |= ((y >> i) & 1) << (2*i + 1)
	}
	return r
}
