package sfc

import "testing"

func TestSerpentineBijectiveContinuous(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 9, 16} {
		c := GenerateSerpentine(p)
		if c.Len() != p*p {
			t.Fatalf("p=%d: len %d", p, c.Len())
		}
		seen := map[Point]bool{}
		for r := 0; r < c.Len(); r++ {
			pt := c.At(r)
			if seen[pt] {
				t.Fatalf("p=%d: revisit %v", p, pt)
			}
			seen[pt] = true
			if c.Rank(pt.X, pt.Y) != r {
				t.Fatalf("p=%d: rank mismatch", p)
			}
		}
		if !c.IsContinuous() {
			t.Errorf("p=%d: serpentine not continuous", p)
		}
		if entry, _ := c.Endpoints(); entry != (Point{0, 0}) {
			t.Errorf("p=%d: entry %v", p, entry)
		}
	}
}

func TestMortonBijective(t *testing.T) {
	for _, lv := range []int{0, 1, 2, 3, 4} {
		c := GenerateMorton(lv)
		p := 1 << lv
		if c.Side() != p || c.Len() != p*p {
			t.Fatalf("levels=%d: side %d len %d", lv, c.Side(), c.Len())
		}
		seen := map[Point]bool{}
		for r := 0; r < c.Len(); r++ {
			pt := c.At(r)
			if seen[pt] {
				t.Fatalf("levels=%d: revisit %v", lv, pt)
			}
			seen[pt] = true
			if c.Rank(pt.X, pt.Y) != r {
				t.Fatalf("levels=%d: rank mismatch", lv)
			}
		}
	}
}

func TestMortonKnownOrder(t *testing.T) {
	c := GenerateMorton(1) // 2x2 Z: (0,0) (1,0) (0,1) (1,1)
	want := []Point{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	for i, w := range want {
		if c.At(i) != w {
			t.Errorf("rank %d: %v, want %v", i, c.At(i), w)
		}
	}
	if GenerateMorton(2).IsContinuous() {
		t.Error("Morton order must not be continuous (that is its deficiency)")
	}
}

// Morton has the same quadrant-block locality as Hilbert: each rank quarter
// occupies one quadrant.
func TestMortonQuadrantLocality(t *testing.T) {
	c := GenerateMorton(3)
	quarter := c.Len() / 4
	for q := 0; q < 4; q++ {
		minX, minY, maxX, maxY := 8, 8, -1, -1
		for r := q * quarter; r < (q+1)*quarter; r++ {
			p := c.At(r)
			if p.X < minX {
				minX = p.X
			}
			if p.Y < minY {
				minY = p.Y
			}
			if p.X > maxX {
				maxX = p.X
			}
			if p.Y > maxY {
				maxY = p.Y
			}
		}
		if maxX-minX >= 4 || maxY-minY >= 4 {
			t.Errorf("quarter %d not a quadrant", q)
		}
	}
}

func TestCubeCurveFromSerpentine(t *testing.T) {
	for _, ne := range []int{2, 3, 4, 8, 9} {
		m := mustMesh(t, ne)
		cc, err := NewCubeCurveFromBase(m, GenerateSerpentine(ne), "serpentine")
		if err != nil {
			t.Fatalf("ne=%d: %v", ne, err)
		}
		if cc.Name() != "serpentine" || cc.Schedule() != nil {
			t.Error("name/schedule wrong for baseline curve")
		}
		// Serpentine is continuous per face. For even Ne the endpoints
		// land on one edge and the chain is globally edge-continuous;
		// for odd Ne they are diagonal and face transitions connect
		// through corner points.
		if ne%2 == 0 && !cc.IsContinuous() {
			t.Errorf("ne=%d: serpentine cube curve not continuous", ne)
		}
		// For odd Ne the per-face endpoints are diagonal corners and a
		// break-free chain is impossible (no Eulerian path in K4, see
		// solveOrientations); the constructor must achieve the minimum
		// of exactly one broken transition.
		if ne%2 == 1 {
			if got := countBreaks(cc); got != 1 {
				t.Errorf("ne=%d: %d broken transitions, want exactly 1", ne, got)
			}
		}
		seen := make([]bool, m.NumElems())
		for r := 0; r < cc.Len(); r++ {
			if seen[cc.At(r)] {
				t.Fatalf("ne=%d: element revisited", ne)
			}
			seen[cc.At(r)] = true
		}
	}
}

// countBreaks returns the number of consecutive curve pairs that are
// neither edge- nor corner-adjacent.
func countBreaks(cc *CubeCurve) int {
	m := cc.Mesh()
	breaks := 0
	for i := 1; i < cc.Len(); i++ {
		a, b := cc.At(i-1), cc.At(i)
		if !isEdgeNeighbor(m, a, b) && !isCornerNeighbor(m, a, b) {
			breaks++
		}
	}
	return breaks
}

func TestCubeCurveFromMorton(t *testing.T) {
	m := mustMesh(t, 8)
	cc, err := NewCubeCurveFromBase(m, GenerateMorton(3), "morton")
	if err != nil {
		t.Fatal(err)
	}
	// Bijective over all elements even though discontinuous.
	seen := make([]bool, m.NumElems())
	for r := 0; r < cc.Len(); r++ {
		if seen[cc.At(r)] {
			t.Fatal("element revisited")
		}
		seen[cc.At(r)] = true
	}
	if cc.IsContinuous() {
		t.Error("Morton cube curve should be discontinuous")
	}
}

func TestCubeCurveFromBaseSizeMismatch(t *testing.T) {
	m := mustMesh(t, 4)
	if _, err := NewCubeCurveFromBase(m, GenerateSerpentine(5), "x"); err == nil {
		t.Error("size mismatch accepted")
	}
}

// Hilbert must beat both baselines on segment edgecut: better than
// serpentine (locality) and better than Morton (continuity).
func TestHilbertBeatsBaselines(t *testing.T) {
	p := 16
	nseg := 16
	segCut := func(c *Curve) int {
		segOf := func(rank int) int { return rank * nseg / (p * p) }
		cut := 0
		for y := 0; y < p; y++ {
			for x := 0; x < p; x++ {
				if x+1 < p && segOf(c.Rank(x, y)) != segOf(c.Rank(x+1, y)) {
					cut++
				}
				if y+1 < p && segOf(c.Rank(x, y)) != segOf(c.Rank(x, y+1)) {
					cut++
				}
			}
		}
		return cut
	}
	h, err := ScheduleFor(p, PeanoFirst)
	if err != nil {
		t.Fatal(err)
	}
	hilbert := segCut(Generate(h))
	serp := segCut(GenerateSerpentine(p))
	morton := segCut(GenerateMorton(4))
	if hilbert >= serp {
		t.Errorf("hilbert %d not better than serpentine %d", hilbert, serp)
	}
	if hilbert > morton {
		t.Errorf("hilbert %d worse than morton %d", hilbert, morton)
	}
	t.Logf("segment edgecut: hilbert=%d morton=%d serpentine=%d", hilbert, morton, serp)
}
