package sfc

import (
	"fmt"

	"sfccube/internal/mesh"
	"sfccube/internal/par"
)

// defaultFacePath is the preferred order in which the curve visits the six
// cube faces; consecutive faces share a cube edge. The Hilbert/Peano family
// always chains continuously along this path. Base orderings with diagonal
// endpoints are rigid (each face's orientation forces the next), so for them
// the constructor searches over every Hamiltonian path of the face adjacency
// graph (the octahedron).
var defaultFacePath = [mesh.NumFaces]mesh.Face{
	mesh.FaceNY, mesh.FacePZ, mesh.FacePY, mesh.FacePX, mesh.FaceNZ, mesh.FaceNX,
}

// facesAdjacent reports whether two cube faces share an edge (all pairs
// except opposites).
func facesAdjacent(a, b mesh.Face) bool {
	if a == b {
		return false
	}
	opposite := map[mesh.Face]mesh.Face{
		mesh.FacePX: mesh.FaceNX, mesh.FaceNX: mesh.FacePX,
		mesh.FacePY: mesh.FaceNY, mesh.FaceNY: mesh.FacePY,
		mesh.FacePZ: mesh.FaceNZ, mesh.FaceNZ: mesh.FacePZ,
	}
	return opposite[a] != b
}

// hamiltonianFacePaths enumerates every visiting order of the six faces in
// which consecutive faces are adjacent, starting with the default path.
func hamiltonianFacePaths() [][mesh.NumFaces]mesh.Face {
	paths := [][mesh.NumFaces]mesh.Face{defaultFacePath}
	var cur [mesh.NumFaces]mesh.Face
	used := [mesh.NumFaces]bool{}
	var rec func(depth int)
	rec = func(depth int) {
		if depth == mesh.NumFaces {
			if cur != defaultFacePath {
				paths = append(paths, cur)
			}
			return
		}
		for f := mesh.Face(0); f < mesh.NumFaces; f++ {
			if used[f] {
				continue
			}
			if depth > 0 && !facesAdjacent(cur[depth-1], f) {
				continue
			}
			used[f] = true
			cur[depth] = f
			rec(depth + 1)
			used[f] = false
		}
	}
	rec(0)
	return paths
}

// CubeCurve is a single continuous space-filling curve traversing every
// element of a cubed-sphere mesh (paper Figure 6): the per-face curves are
// oriented so that the exit element of each face is edge-adjacent, across the
// shared cube edge, to the entry element of the next face. Splitting the
// curve into equal contiguous segments yields the SFC partition.
type CubeCurve struct {
	m     *mesh.Mesh
	base  *Curve   // the per-face ordering being chained
	sched Schedule // nil when built from a baseline ordering
	name  string
	path  [mesh.NumFaces]mesh.Face
	xf    [mesh.NumFaces]XF // orientation applied to the base curve per face

	order []mesh.ElemID // rank -> element
	rank  []int         // element -> rank
}

// NewCubeCurve builds the continuous cubed-sphere curve for mesh m using the
// given refinement schedule. The schedule's side must equal m.Ne(). The
// per-face orientations are found by a backtracking search over the dihedral
// group and the result is verified to be continuous; an error is returned
// only for a schedule/mesh size mismatch (a continuous assignment always
// exists because corner elements of adjacent faces that meet at a cube-edge
// endpoint share a full element edge).
func NewCubeCurve(m *mesh.Mesh, sched Schedule) (*CubeCurve, error) {
	if sched.Side() != m.Ne() {
		return nil, fmt.Errorf("sfc: schedule %v covers a %dx%d face but mesh has Ne=%d",
			sched, sched.Side(), sched.Side(), m.Ne())
	}
	cc, err := NewCubeCurveFromBase(m, Generate(sched), sched.String())
	if err != nil {
		return nil, err
	}
	cc.sched = sched
	// At Ne=1 every face is a single cell, so the orientation search above is
	// vacuous (entry == exit under any transform) and would pick arbitrary
	// face orientations. Those orientations are observable through ElemXF,
	// whose contract is that refining the schedule continues the global
	// curve; solve them against the one-level refinement instead, where the
	// motif endpoints are distinguishable, so the Ne=1 curve agrees with
	// what its own refinement chooses.
	if m.Ne() == 1 {
		m2, err := mesh.New(2)
		if err != nil {
			return nil, err
		}
		refined := append(append(Schedule{}, sched...), Hilbert)
		cc2, err := NewCubeCurveFromBase(m2, Generate(refined), refined.String())
		if err != nil {
			return nil, err
		}
		cc.path = cc2.path
		cc.xf = cc2.xf
		cc.build(cc.base)
	}
	return cc, nil
}

// NewCubeCurveFromBase chains an arbitrary per-face ordering over the six
// faces. The base ordering need not be continuous (e.g. Morton order); the
// orientation search still aligns each face's exit cell with the next
// face's entry cell, so a continuous base yields a globally continuous
// curve and a discontinuous base degrades gracefully. Used for the baseline
// orderings (GenerateSerpentine, GenerateMorton).
func NewCubeCurveFromBase(m *mesh.Mesh, base *Curve, name string) (*CubeCurve, error) {
	if base.Side() != m.Ne() {
		return nil, fmt.Errorf("sfc: base ordering covers a %dx%d face but mesh has Ne=%d",
			base.Side(), base.Side(), m.Ne())
	}
	cc := &CubeCurve{m: m, base: base, name: name}
	if !cc.solveOrientations(base) {
		// Cannot happen for a cube (see doc comment), but fail loudly
		// rather than return a broken curve.
		return nil, fmt.Errorf("sfc: no face orientation found for Ne=%d", m.Ne())
	}
	cc.build(base)
	return cc, nil
}

// entryExit returns the entry and exit cells of the base curve on a face
// once orientation t is applied.
func entryExit(base *Curve, t XF) (entry, exit Point) {
	e0, e1 := base.Endpoints()
	return t.Apply(e0, base.Side()), t.Apply(e1, base.Side())
}

// solveOrientations assigns one XF per face (in facePath order) so that each
// face's exit element connects to the next face's entry element. It prefers
// edge adjacency (a fully continuous global curve, always achievable for the
// Hilbert/Peano family whose endpoints lie on one edge); for base orderings
// with diagonal endpoints (serpentine with odd Ne, Morton) it falls back to
// corner adjacency, and as a last resort to no constraint at all -- the
// partition stays valid, only segment compactness degrades.
// solveOrientations searches for face orientations minimising the number of
// broken transitions. It first demands full edge-adjacency (always solvable
// for the Hilbert/Peano family: their entry and exit lie on the same domain
// edge). For base orderings whose endpoints are diagonal corners (Morton,
// serpentine with odd Ne) it then allows corner adjacency, and finally an
// increasing budget of disconnected transitions. Note that for diagonal
// endpoints at least one break is unavoidable: a break-free chain would be
// an Eulerian path in K4 (faces are the edges between same-parity cube
// corners, every corner has odd degree 3), which does not exist.
func (cc *CubeCurve) solveOrientations(base *Curve) bool {
	edgeAdj := isEdgeNeighborOf(cc.m)
	connected := func(a, b mesh.ElemID) bool {
		return isEdgeNeighbor(cc.m, a, b) || isCornerNeighbor(cc.m, a, b)
	}
	paths := hamiltonianFacePaths()
	try := func(accept func(a, b mesh.ElemID) bool, breaks int) bool {
		for _, path := range paths {
			var rec func(step, budget int, prevExit mesh.ElemID) bool
			rec = func(step, budget int, prevExit mesh.ElemID) bool {
				if step == mesh.NumFaces {
					return true
				}
				f := path[step]
				for _, t := range AllXF {
					entry, exit := entryExit(base, t)
					entryID := cc.m.ID(f, entry.X, entry.Y)
					b := budget
					if step > 0 && !accept(prevExit, entryID) {
						if b == 0 {
							continue
						}
						b--
					}
					cc.xf[f] = t
					if rec(step+1, b, cc.m.ID(f, exit.X, exit.Y)) {
						return true
					}
				}
				return false
			}
			if rec(0, breaks, -1) {
				cc.path = path
				return true
			}
		}
		return false
	}
	if try(edgeAdj, 0) {
		return true
	}
	for breaks := 0; breaks <= mesh.NumFaces-1; breaks++ {
		if try(connected, breaks) {
			return true
		}
	}
	return false
}

func isEdgeNeighborOf(m *mesh.Mesh) func(a, b mesh.ElemID) bool {
	return func(a, b mesh.ElemID) bool { return isEdgeNeighbor(m, a, b) }
}

func isCornerNeighbor(m *mesh.Mesh, a, b mesh.ElemID) bool {
	for _, n := range m.CornerNeighbors(a) {
		if n == b {
			return true
		}
	}
	return false
}

func isEdgeNeighbor(m *mesh.Mesh, a, b mesh.ElemID) bool {
	for _, n := range m.EdgeNeighbors(a) {
		if n == b {
			return true
		}
	}
	return false
}

// build materialises the global visit order. The six faces occupy fixed
// rank ranges [fi*P^2, (fi+1)*P^2), so each face's segment and the inverse
// rank table fill in parallel over disjoint writes; the content of every
// entry depends only on its index, making the result byte-identical at any
// GOMAXPROCS.
func (cc *CubeCurve) build(base *Curve) {
	k := cc.m.NumElems()
	perFace := k / mesh.NumFaces
	cc.order = make([]mesh.ElemID, k)
	cc.rank = make([]int, k)
	par.ForBlocks(len(cc.path), func(fi int) {
		f := cc.path[fi]
		t := cc.xf[f]
		out := cc.order[fi*perFace : (fi+1)*perFace]
		for i, p := range base.Order() {
			q := t.Apply(p, base.Side())
			out[i] = cc.m.ID(f, q.X, q.Y)
		}
	})
	par.ForChunks(k, 1<<15, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			cc.rank[cc.order[r]] = r
		}
	})
}

// Mesh returns the underlying mesh.
func (cc *CubeCurve) Mesh() *mesh.Mesh { return cc.m }

// Schedule returns the refinement schedule used per face, or nil when the
// curve was built from a baseline ordering via NewCubeCurveFromBase.
func (cc *CubeCurve) Schedule() Schedule { return cc.sched }

// Name returns a human-readable label for the per-face ordering.
func (cc *CubeCurve) Name() string { return cc.name }

// Len returns the number of elements on the curve (6 * Ne^2).
func (cc *CubeCurve) Len() int { return len(cc.order) }

// At returns the element visited at the given curve rank.
func (cc *CubeCurve) At(rank int) mesh.ElemID { return cc.order[rank] }

// Rank returns the curve rank of element e.
func (cc *CubeCurve) Rank(e mesh.ElemID) int { return cc.rank[e] }

// Order returns the global visit order; the returned slice is owned by the
// curve and must not be modified.
func (cc *CubeCurve) Order() []mesh.ElemID { return cc.order }

// FacePath returns the order in which the curve traverses the cube faces.
func (cc *CubeCurve) FacePath() [mesh.NumFaces]mesh.Face { return cc.path }

// FaceXF returns the orientation applied to the per-face base ordering on
// face f.
func (cc *CubeCurve) FaceXF(f mesh.Face) XF { return cc.xf[f] }

// ElemXF returns the accumulated curve orientation at element e: the
// transform under which refinement of e (appending levels to the schedule)
// would continue the global curve. Because dihedral transforms distribute
// over block decomposition, the face orientation composed with the base
// curve's leaf orientation is exactly the transform the refined global curve
// would accumulate at e. Only meaningful for the Hilbert/Peano family; base
// orderings built from serpentine or Morton curves carry Identity leaf
// transforms.
func (cc *CubeCurve) ElemXF(e mesh.ElemID) XF {
	el := cc.m.Elem(e)
	t := cc.xf[el.Face]
	p := t.Inverse().Apply(Point{X: el.I, Y: el.J}, cc.base.Side())
	return t.Compose(cc.base.LeafXF(cc.base.Rank(p.X, p.Y)))
}

// IsContinuous reports whether consecutive elements on the global curve are
// edge-adjacent on the cubed-sphere (including across cube edges).
func (cc *CubeCurve) IsContinuous() bool {
	for i := 1; i < len(cc.order); i++ {
		if !isEdgeNeighbor(cc.m, cc.order[i-1], cc.order[i]) {
			return false
		}
	}
	return true
}

// IsConnected reports whether consecutive elements share at least a corner
// point -- a weaker property than IsContinuous that the baseline orderings
// with diagonal endpoints satisfy at face transitions.
func (cc *CubeCurve) IsConnected() bool {
	for i := 1; i < len(cc.order); i++ {
		a, b := cc.order[i-1], cc.order[i]
		if !isEdgeNeighbor(cc.m, a, b) && !isCornerNeighbor(cc.m, a, b) {
			return false
		}
	}
	return true
}
