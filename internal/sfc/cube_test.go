package sfc

import (
	"testing"

	"sfccube/internal/mesh"
)

func cubeInvariants(t *testing.T, ne int, order Order) *CubeCurve {
	t.Helper()
	m := mustMesh(t, ne)
	s, err := ScheduleFor(ne, order)
	if err != nil {
		t.Fatalf("ScheduleFor(%d): %v", ne, err)
	}
	cc, err := NewCubeCurve(m, s)
	if err != nil {
		t.Fatalf("NewCubeCurve(ne=%d): %v", ne, err)
	}
	if cc.Len() != m.NumElems() {
		t.Fatalf("ne=%d: Len=%d, want %d", ne, cc.Len(), m.NumElems())
	}
	// Bijection between ranks and elements.
	seen := make([]bool, m.NumElems())
	for r := 0; r < cc.Len(); r++ {
		e := cc.At(r)
		if seen[e] {
			t.Fatalf("ne=%d: element %d visited twice", ne, e)
		}
		seen[e] = true
		if cc.Rank(e) != r {
			t.Fatalf("ne=%d: Rank(At(%d)) = %d", ne, r, cc.Rank(e))
		}
	}
	// The defining property (Figure 6): one single continuous curve across
	// the whole cubed-sphere, including across cube edges.
	if !cc.IsContinuous() {
		t.Fatalf("ne=%d: cube curve not continuous", ne)
	}
	return cc
}

func TestCubeCurveAllPaperResolutions(t *testing.T) {
	// The paper's four test resolutions plus small sanity sizes.
	for _, ne := range []int{1, 2, 3, 4, 6, 8, 9, 12, 16, 18} {
		cubeInvariants(t, ne, PeanoFirst)
	}
}

func TestCubeCurveRefinementOrders(t *testing.T) {
	for _, o := range []Order{PeanoFirst, HilbertFirst, Interleaved} {
		cubeInvariants(t, 6, o)
		cubeInvariants(t, 18, o)
	}
}

func TestCubeCurveVisitsFacesInPathOrder(t *testing.T) {
	cc := cubeInvariants(t, 4, PeanoFirst)
	m := cc.Mesh()
	per := m.Ne() * m.Ne()
	for i, f := range cc.FacePath() {
		for r := i * per; r < (i+1)*per; r++ {
			if got := m.Elem(cc.At(r)).Face; got != f {
				t.Fatalf("rank %d on face %v, want %v", r, got, f)
			}
		}
	}
}

func TestCubeCurveSizeMismatch(t *testing.T) {
	m := mustMesh(t, 4)
	if _, err := NewCubeCurve(m, Schedule{Hilbert}); err == nil {
		t.Error("want error for schedule side 2 on Ne=4 mesh")
	}
}

func TestCubeCurveDeterministic(t *testing.T) {
	m := mustMesh(t, 6)
	s, _ := ScheduleFor(6, PeanoFirst)
	a, _ := NewCubeCurve(m, s)
	b, _ := NewCubeCurve(m, s)
	for r := 0; r < a.Len(); r++ {
		if a.At(r) != b.At(r) {
			t.Fatalf("rank %d differs between identical constructions", r)
		}
	}
}

// Contiguous curve segments must be geometrically compact: for an 8x8 face
// mesh split into 48 segments of 8 elements, every segment's elements must
// form a connected patch under edge+corner adjacency.
func TestCurveSegmentsAreConnected(t *testing.T) {
	cc := cubeInvariants(t, 8, PeanoFirst)
	m := cc.Mesh()
	segSize := 8
	for start := 0; start < cc.Len(); start += segSize {
		in := map[mesh.ElemID]bool{}
		for r := start; r < start+segSize; r++ {
			in[cc.At(r)] = true
		}
		// BFS from the first element of the segment.
		visited := map[mesh.ElemID]bool{}
		queue := []mesh.ElemID{cc.At(start)}
		visited[cc.At(start)] = true
		for len(queue) > 0 {
			e := queue[0]
			queue = queue[1:]
			for _, n := range m.Neighbors(e) {
				if in[n] && !visited[n] {
					visited[n] = true
					queue = append(queue, n)
				}
			}
		}
		if len(visited) != segSize {
			t.Fatalf("segment at rank %d not connected: reached %d of %d",
				start, len(visited), segSize)
		}
	}
}

func BenchmarkCubeCurveNe16(b *testing.B) {
	m := mustMesh(b, 16)
	s, _ := ScheduleFor(16, PeanoFirst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCubeCurve(m, s); err != nil {
			b.Fatal(err)
		}
	}
}

// mustMesh builds a cubed-sphere mesh or fails the test.
func mustMesh(tb testing.TB, ne int) *mesh.Mesh {
	tb.Helper()
	m, err := mesh.New(ne)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// TestNe1OrientationsMatchRefinement pins the Ne=1 fix: with a single cell
// per face the orientation search is vacuous (entry == exit under every
// transform), so the curve must adopt the face path and orientations its own
// one-level refinement chooses — otherwise ElemXF's contract (refining the
// schedule continues the global curve) silently breaks, which is exactly how
// tree-SFC orders over an Ne=1 adaptive forest went wrong.
func TestNe1OrientationsMatchRefinement(t *testing.T) {
	for ord := Order(0); ord < 3; ord++ {
		m1, err := mesh.New(1)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := ScheduleFor(1, ord)
		if err != nil {
			t.Fatal(err)
		}
		c1, err := NewCubeCurve(m1, sched)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := mesh.New(2)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := NewCubeCurve(m2, append(append(Schedule{}, sched...), Hilbert))
		if err != nil {
			t.Fatal(err)
		}
		if c1.FacePath() != c2.FacePath() {
			t.Errorf("order %v: Ne=1 face path %v differs from its refinement's %v",
				ord, c1.FacePath(), c2.FacePath())
		}
		for f := mesh.Face(0); f < mesh.NumFaces; f++ {
			if c1.FaceXF(f) != c2.FaceXF(f) {
				t.Errorf("order %v face %d: Ne=1 orientation %v, refinement uses %v",
					ord, f, c1.FaceXF(f), c2.FaceXF(f))
			}
		}
	}
}
