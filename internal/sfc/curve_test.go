package sfc

import (
	"testing"
	"testing/quick"
)

func TestXFApplyBasics(t *testing.T) {
	p := Point{1, 0}
	s := 4
	cases := []struct {
		xf   XF
		want Point
	}{
		{Identity, Point{1, 0}},
		{Transpose, Point{0, 1}},
		{MirrorX, Point{2, 0}},
		{MirrorY, Point{1, 3}},
		{Rotate180, Point{2, 3}},
		{AntiTranspose, Point{3, 2}},
		{RotateCW, Point{3, 1}},
		{RotateCCW, Point{0, 2}},
	}
	for _, c := range cases {
		if got := c.xf.Apply(p, s); got != c.want {
			t.Errorf("%+v.Apply(%v) = %v, want %v", c.xf, p, got, c.want)
		}
	}
}

func TestXFApplyIsBijection(t *testing.T) {
	s := 5
	for _, xf := range AllXF {
		seen := map[Point]bool{}
		for y := 0; y < s; y++ {
			for x := 0; x < s; x++ {
				q := xf.Apply(Point{x, y}, s)
				if q.X < 0 || q.X >= s || q.Y < 0 || q.Y >= s {
					t.Fatalf("%+v maps (%d,%d) out of range: %v", xf, x, y, q)
				}
				if seen[q] {
					t.Fatalf("%+v not injective at %v", xf, q)
				}
				seen[q] = true
			}
		}
	}
}

// Property: Compose(t,u).Apply == t.Apply ∘ u.Apply, for all pairs and sizes.
func TestXFComposeMatchesApplication(t *testing.T) {
	for _, a := range AllXF {
		for _, b := range AllXF {
			c := a.Compose(b)
			for _, s := range []int{1, 2, 3, 6} {
				for y := 0; y < s; y++ {
					for x := 0; x < s; x++ {
						p := Point{x, y}
						want := a.Apply(b.Apply(p, s), s)
						if got := c.Apply(p, s); got != want {
							t.Fatalf("Compose(%+v,%+v).Apply(%v,%d)=%v want %v",
								a, b, p, s, got, want)
						}
					}
				}
			}
		}
	}
}

func TestXFInverse(t *testing.T) {
	for _, a := range AllXF {
		inv := a.Inverse()
		if got := a.Compose(inv); got != Identity {
			t.Errorf("%+v.Compose(inverse) = %+v, want identity", a, got)
		}
		if got := inv.Compose(a); got != Identity {
			t.Errorf("inverse.Compose(%+v) = %+v, want identity", a, got)
		}
	}
}

func TestXFGroupClosure(t *testing.T) {
	in := map[XF]bool{}
	for _, a := range AllXF {
		in[a] = true
	}
	for _, a := range AllXF {
		for _, b := range AllXF {
			if !in[a.Compose(b)] {
				t.Fatalf("composition %+v∘%+v left D4", a, b)
			}
		}
	}
}

// The motifs themselves must be continuous and enter/exit at the canonical
// corners; this pins down the major/joiner vector tables of Figures 2 and 4.
func TestMotifContinuity(t *testing.T) {
	for _, k := range []Kind{Hilbert, Peano} {
		cells := motifOf(k)
		b := k.Base()
		if len(cells) != b*b {
			t.Fatalf("%v motif has %d cells, want %d", k, len(cells), b*b)
		}
		if cells[0].cell != (Point{0, 0}) {
			t.Errorf("%v motif entry cell %v, want (0,0)", k, cells[0].cell)
		}
		if cells[len(cells)-1].cell != (Point{b - 1, 0}) {
			t.Errorf("%v motif exit cell %v, want (%d,0)", k, cells[len(cells)-1].cell, b-1)
		}
		seen := map[Point]bool{}
		for i, mc := range cells {
			if seen[mc.cell] {
				t.Fatalf("%v motif revisits %v", k, mc.cell)
			}
			seen[mc.cell] = true
			if i > 0 && manhattan(cells[i-1].cell, mc.cell) != 1 {
				t.Fatalf("%v motif jump from %v to %v", k, cells[i-1].cell, mc.cell)
			}
		}
	}
}

func TestKindString(t *testing.T) {
	if Hilbert.String() != "Hilbert" || Peano.String() != "Peano" {
		t.Error("Kind.String wrong")
	}
	if Hilbert.Base() != 2 || Peano.Base() != 3 {
		t.Error("Kind.Base wrong")
	}
}

func TestScheduleSide(t *testing.T) {
	cases := []struct {
		s    Schedule
		want int
	}{
		{Schedule{}, 1},
		{Schedule{Hilbert}, 2},
		{Schedule{Peano}, 3},
		{Schedule{Hilbert, Hilbert, Hilbert}, 8},
		{Schedule{Peano, Peano}, 9},
		{Schedule{Peano, Hilbert}, 6},
		{Schedule{Hilbert, Peano, Peano}, 18},
	}
	for _, c := range cases {
		if got := c.s.Side(); got != c.want {
			t.Errorf("%v.Side() = %d, want %d", c.s, got, c.want)
		}
	}
}

// curveInvariants checks bijectivity, continuity, and canonical endpoints.
func curveInvariants(t *testing.T, s Schedule) {
	t.Helper()
	c := Generate(s)
	p := c.Side()
	if c.Len() != p*p {
		t.Fatalf("%v: Len=%d, want %d", s, c.Len(), p*p)
	}
	seen := map[Point]bool{}
	for r := 0; r < c.Len(); r++ {
		pt := c.At(r)
		if pt.X < 0 || pt.X >= p || pt.Y < 0 || pt.Y >= p {
			t.Fatalf("%v: rank %d out of range: %v", s, r, pt)
		}
		if seen[pt] {
			t.Fatalf("%v: cell %v visited twice", s, pt)
		}
		seen[pt] = true
		if c.Rank(pt.X, pt.Y) != r {
			t.Fatalf("%v: Rank(At(%d)) = %d", s, r, c.Rank(pt.X, pt.Y))
		}
	}
	if !c.IsContinuous() {
		t.Fatalf("%v: curve not continuous", s)
	}
	entry, exit := c.Endpoints()
	if entry != (Point{0, 0}) {
		t.Errorf("%v: entry %v, want (0,0)", s, entry)
	}
	if exit != (Point{p - 1, 0}) {
		t.Errorf("%v: exit %v, want (%d,0)", s, exit, p-1)
	}
}

func TestHilbertCurves(t *testing.T) {
	for n := 0; n <= 6; n++ {
		s := make(Schedule, n)
		for i := range s {
			s[i] = Hilbert
		}
		curveInvariants(t, s)
	}
}

func TestPeanoCurves(t *testing.T) {
	for m := 0; m <= 4; m++ {
		s := make(Schedule, m)
		for i := range s {
			s[i] = Peano
		}
		curveInvariants(t, s)
	}
}

func TestHilbertPeanoCurves(t *testing.T) {
	schedules := []Schedule{
		{Peano, Hilbert},                 // 6, the paper's Figure 5
		{Hilbert, Peano},                 // 6, reversed order
		{Peano, Hilbert, Hilbert},        // 12
		{Hilbert, Peano, Peano},          // 18 (K=1944 case)
		{Peano, Peano, Hilbert},          // 18
		{Peano, Hilbert, Peano},          // 18
		{Hilbert, Hilbert, Peano, Peano}, // 36
		{Peano, Hilbert, Peano, Hilbert}, // 36
	}
	for _, s := range schedules {
		curveInvariants(t, s)
	}
}

// The level-1 Hilbert curve must be the canonical U shape of Figure 2a.
func TestHilbertLevel1Shape(t *testing.T) {
	c := Generate(Schedule{Hilbert})
	want := []Point{{0, 0}, {0, 1}, {1, 1}, {1, 0}}
	for i, w := range want {
		if c.At(i) != w {
			t.Errorf("rank %d: %v, want %v", i, c.At(i), w)
		}
	}
}

// The level-1 m-Peano curve must be the meander of Figure 4a.
func TestPeanoLevel1Shape(t *testing.T) {
	c := Generate(Schedule{Peano})
	want := []Point{{0, 0}, {0, 1}, {0, 2}, {1, 2}, {2, 2}, {2, 1}, {1, 1}, {1, 0}, {2, 0}}
	for i, w := range want {
		if c.At(i) != w {
			t.Errorf("rank %d: %v, want %v", i, c.At(i), w)
		}
	}
}

// Nesting property: on a level-n Hilbert curve, the cells of each half of the
// rank range occupy contiguous blocks (each quadrant is visited entirely
// before moving on). This is the locality property that makes SFC partitions
// compact.
func TestHilbertQuadrantLocality(t *testing.T) {
	c := Generate(Schedule{Hilbert, Hilbert, Hilbert}) // 8x8
	quarter := c.Len() / 4
	for q := 0; q < 4; q++ {
		// All cells of this rank quarter must fall in a single 4x4 block.
		minX, minY, maxX, maxY := 8, 8, -1, -1
		for r := q * quarter; r < (q+1)*quarter; r++ {
			p := c.At(r)
			if p.X < minX {
				minX = p.X
			}
			if p.Y < minY {
				minY = p.Y
			}
			if p.X > maxX {
				maxX = p.X
			}
			if p.Y > maxY {
				maxY = p.Y
			}
		}
		if maxX-minX >= 4 || maxY-minY >= 4 {
			t.Errorf("rank quarter %d spans (%d..%d, %d..%d), not a 4x4 block",
				q, minX, maxX, minY, maxY)
		}
	}
}

func TestFactor(t *testing.T) {
	cases := []struct {
		p      int
		n2, n3 int
		ok     bool
	}{
		{1, 0, 0, true}, {2, 1, 0, true}, {3, 0, 1, true}, {4, 2, 0, true},
		{6, 1, 1, true}, {8, 3, 0, true}, {9, 0, 2, true}, {12, 2, 1, true},
		{16, 4, 0, true}, {18, 1, 2, true}, {24, 3, 1, true}, {36, 2, 2, true},
		{5, 0, 0, false}, {7, 0, 0, false}, {10, 0, 0, false}, {14, 0, 0, false},
		{0, 0, 0, false}, {-4, 0, 0, false},
	}
	for _, c := range cases {
		n2, n3, err := Factor(c.p)
		if c.ok != (err == nil) {
			t.Errorf("Factor(%d) err = %v, want ok=%v", c.p, err, c.ok)
			continue
		}
		if c.ok && (n2 != c.n2 || n3 != c.n3) {
			t.Errorf("Factor(%d) = (%d,%d), want (%d,%d)", c.p, n2, n3, c.n2, c.n3)
		}
	}
}

func TestScheduleFor(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 6, 8, 9, 12, 16, 18, 24, 36, 48, 54} {
		for _, o := range []Order{PeanoFirst, HilbertFirst, Interleaved} {
			s, err := ScheduleFor(p, o)
			if err != nil {
				t.Fatalf("ScheduleFor(%d,%v): %v", p, o, err)
			}
			if s.Side() != p {
				t.Errorf("ScheduleFor(%d,%v).Side() = %d", p, o, s.Side())
			}
			curveInvariants(t, s)
		}
	}
	if _, err := ScheduleFor(10, PeanoFirst); err == nil {
		t.Error("ScheduleFor(10) should fail")
	}
}

func TestScheduleForOrders(t *testing.T) {
	s, _ := ScheduleFor(18, PeanoFirst)
	if s.String() != "Peano·Peano·Hilbert" {
		t.Errorf("PeanoFirst 18: %v", s)
	}
	s, _ = ScheduleFor(18, HilbertFirst)
	if s.String() != "Hilbert·Peano·Peano" {
		t.Errorf("HilbertFirst 18: %v", s)
	}
	s, _ = ScheduleFor(36, Interleaved)
	if s.String() != "Peano·Hilbert·Peano·Hilbert" {
		t.Errorf("Interleaved 36: %v", s)
	}
	if (Schedule{}).String() != "(empty)" {
		t.Error("empty schedule string")
	}
}

// Property: Rank and At are inverse bijections for random schedules.
func TestRankAtInverseProperty(t *testing.T) {
	curves := []*Curve{
		Generate(Schedule{Hilbert, Hilbert}),
		Generate(Schedule{Peano, Hilbert}),
		Generate(Schedule{Hilbert, Peano}),
	}
	f := func(raw uint32) bool {
		for _, c := range curves {
			r := int(raw) % c.Len()
			p := c.At(r)
			if c.Rank(p.X, p.Y) != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Generation is deterministic.
func TestGenerateDeterministic(t *testing.T) {
	s := Schedule{Peano, Hilbert, Hilbert}
	a, b := Generate(s), Generate(s)
	for r := 0; r < a.Len(); r++ {
		if a.At(r) != b.At(r) {
			t.Fatalf("rank %d differs", r)
		}
	}
}

// Locality: splitting the curve into equal contiguous segments must cut far
// fewer grid edges than splitting a row-major ordering the same way; this is
// the property that gives SFC partitions low edgecut.
func TestHilbertLocalityBeatsRowMajor(t *testing.T) {
	c := Generate(Schedule{Hilbert, Hilbert, Hilbert, Hilbert}) // 16x16
	p := c.Side()
	nseg := 16
	segOf := func(rank int) int { return rank * nseg / (p * p) }
	cutEdges := func(rankOf func(x, y int) int) int {
		cut := 0
		for y := 0; y < p; y++ {
			for x := 0; x < p; x++ {
				if x+1 < p && segOf(rankOf(x, y)) != segOf(rankOf(x+1, y)) {
					cut++
				}
				if y+1 < p && segOf(rankOf(x, y)) != segOf(rankOf(x, y+1)) {
					cut++
				}
			}
		}
		return cut
	}
	hilbertCut := cutEdges(c.Rank)
	rowMajorCut := cutEdges(func(x, y int) int { return y*p + x })
	if hilbertCut >= rowMajorCut {
		t.Errorf("hilbert segment edgecut %d not better than row-major %d",
			hilbertCut, rowMajorCut)
	}
}
