package sfc

// Kind selects the refinement type applied at one recursion level.
type Kind int

const (
	// Hilbert refines a domain into 2x2 sub-domains (paper section 3,
	// Figures 2 and 3).
	Hilbert Kind = iota
	// Peano refines a domain into 3x3 sub-domains using the meandering
	// Peano curve (paper Figure 4).
	Peano
)

func (k Kind) String() string {
	switch k {
	case Hilbert:
		return "Hilbert"
	case Peano:
		return "Peano"
	}
	return "Kind(?)"
}

// Base returns the refinement factor of k: the motif subdivides each domain
// edge into Base equal parts.
func (k Kind) Base() int {
	if k == Peano {
		return 3
	}
	return 2
}

// motifCell is one sub-domain of a level-1 curve: its cell coordinate within
// the parent (canonical orientation) and the transform applied to the child
// curve inside it. In the paper's terminology the transform encodes the
// sub-domain's major and joiner vectors (Figure 2, panel b; Figure 4,
// panel b).
type motifCell struct {
	cell  Point
	child XF
}

// Both motifs obey the same contract: in canonical orientation the curve
// enters the parent domain at the bottom-left cell's entry corner (0,0) and
// exits at the bottom-right cell's exit corner (b-1, 0), travelling net along
// the +X major axis. Every child transform is chosen so that the exit point
// of sub-domain k is grid-adjacent to the entry point of sub-domain k+1; this
// is verified exhaustively by the tests (TestMotifContinuity).

// hilbertMotif is the canonical U-shaped level-1 Hilbert curve:
// (0,0) -> (0,1) -> (1,1) -> (1,0).
var hilbertMotif = []motifCell{
	{Point{0, 0}, Transpose},
	{Point{0, 1}, Identity},
	{Point{1, 1}, Identity},
	{Point{1, 0}, AntiTranspose},
}

// peanoMotif is the canonical level-1 meandering Peano curve:
// (0,0) -> (0,1) -> (0,2) -> (1,2) -> (2,2) -> (2,1) -> (1,1) -> (1,0) -> (2,0).
// Like the Hilbert motif it enters at the bottom-left and exits at the
// bottom-right corner, which is what allows Hilbert and m-Peano levels to be
// nested into the combined Hilbert-Peano curve (paper section 3).
var peanoMotif = []motifCell{
	{Point{0, 0}, Transpose},
	{Point{0, 1}, Transpose},
	{Point{0, 2}, Identity},
	{Point{1, 2}, Identity},
	{Point{2, 2}, Identity},
	{Point{2, 1}, Rotate180},
	{Point{1, 1}, AntiTranspose},
	{Point{1, 0}, AntiTranspose},
	{Point{2, 0}, Identity},
}

// motifOf returns the motif cells for refinement kind k.
func motifOf(k Kind) []motifCell {
	if k == Peano {
		return peanoMotif
	}
	return hilbertMotif
}
