// Package sfc implements the space-filling curves of Dennis (IPPS 2003,
// section 3): the Hilbert curve for P = 2^n domains, the meandering Peano
// (m-Peano) curve for P = 3^m domains, and the nested Hilbert-Peano curve for
// P = 2^n * 3^m domains, plus the construction of a single continuous curve
// over all six faces of the cubed-sphere (Figure 6).
//
// The implementation follows the paper's major/joiner-vector formulation in a
// transform-algebra form: every recursion level applies a "motif" (the level-1
// curve shape) whose sub-domains each carry a dihedral-group transform -- the
// paper's major and joiner vectors are exactly the images of the canonical
// curve's entry edge and exit direction under that transform. Both the Hilbert
// and m-Peano motifs enter their domain at the bottom-left corner and exit at
// the bottom-right corner, i.e. the curve traverses the domain along a single
// major axis; as the paper observes, this shared property is what permits the
// two refinement types to nest freely level by level.
package sfc

// Point is a cell coordinate in a P x P grid, 0 <= X,Y < P.
type Point struct{ X, Y int }

// XF is an element of the dihedral group D4 acting on an s x s grid of cells:
// first the coordinates are optionally swapped (reflection across the main
// diagonal), then optionally flipped in X and/or Y. All eight symmetries of
// the square are representable.
type XF struct{ Swap, FlipX, FlipY bool }

// The eight elements of D4 in this representation.
var (
	Identity      = XF{}
	Transpose     = XF{Swap: true}
	MirrorX       = XF{FlipX: true}
	MirrorY       = XF{FlipY: true}
	Rotate180     = XF{FlipX: true, FlipY: true}
	AntiTranspose = XF{Swap: true, FlipX: true, FlipY: true}
	RotateCW      = XF{Swap: true, FlipX: true} // (x,y) -> (s-1-y, x)
	RotateCCW     = XF{Swap: true, FlipY: true} // (x,y) -> (y, s-1-x)
)

// AllXF lists every element of D4; useful for searches over orientations.
var AllXF = [8]XF{
	Identity, Transpose, MirrorX, MirrorY,
	Rotate180, AntiTranspose, RotateCW, RotateCCW,
}

// Apply maps cell p of an s x s grid to its image under t.
func (t XF) Apply(p Point, s int) Point {
	if t.Swap {
		p.X, p.Y = p.Y, p.X
	}
	if t.FlipX {
		p.X = s - 1 - p.X
	}
	if t.FlipY {
		p.Y = s - 1 - p.Y
	}
	return p
}

// matrix returns the linear part of t as a 2x2 signed permutation matrix.
func (t XF) matrix() [2][2]int {
	m := [2][2]int{{1, 0}, {0, 1}}
	if t.Swap {
		m = [2][2]int{{0, 1}, {1, 0}}
	}
	if t.FlipX {
		m[0][0], m[0][1] = -m[0][0], -m[0][1]
	}
	if t.FlipY {
		m[1][0], m[1][1] = -m[1][0], -m[1][1]
	}
	return m
}

// fromMatrix converts a signed permutation matrix back to an XF.
func fromMatrix(m [2][2]int) XF {
	var t XF
	if m[0][0] == 0 {
		t.Swap = true
		t.FlipX = m[0][1] < 0
		t.FlipY = m[1][0] < 0
	} else {
		t.FlipX = m[0][0] < 0
		t.FlipY = m[1][1] < 0
	}
	return t
}

// Compose returns the transform "t after u": Compose(t,u).Apply(p) ==
// t.Apply(u.Apply(p)). The translation parts recentre automatically because
// every XF maps the square onto itself.
func (t XF) Compose(u XF) XF {
	a, b := t.matrix(), u.matrix()
	var m [2][2]int
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			m[i][j] = a[i][0]*b[0][j] + a[i][1]*b[1][j]
		}
	}
	return fromMatrix(m)
}

// Inverse returns the transform u with Compose(t, u) == Identity.
func (t XF) Inverse() XF {
	a := t.matrix()
	// The inverse of an orthogonal matrix is its transpose.
	return fromMatrix([2][2]int{{a[0][0], a[1][0]}, {a[0][1], a[1][1]}})
}
