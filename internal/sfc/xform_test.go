package sfc

import "testing"

// xfName gives readable failure messages for the table-driven group tests.
var xfName = map[XF]string{
	Identity:      "Identity",
	Transpose:     "Transpose",
	MirrorX:       "MirrorX",
	MirrorY:       "MirrorY",
	Rotate180:     "Rotate180",
	AntiTranspose: "AntiTranspose",
	RotateCW:      "RotateCW",
	RotateCCW:     "RotateCCW",
}

// TestXFCayleyTable pins the complete multiplication table of D4 in this
// representation: row a, column b holds a.Compose(b) ("a after b"). The
// generic property tests (Compose matches function application, closure,
// associativity) confirm *some* group structure; this table freezes *which*
// group element every product is, so a silent change to the Swap/Flip
// convention cannot slip through while the properties still hold.
func TestXFCayleyTable(t *testing.T) {
	table := map[XF][8]XF{
		// Columns in AllXF order: Identity, Transpose, MirrorX, MirrorY,
		// Rotate180, AntiTranspose, RotateCW, RotateCCW.
		Identity:      {Identity, Transpose, MirrorX, MirrorY, Rotate180, AntiTranspose, RotateCW, RotateCCW},
		Transpose:     {Transpose, Identity, RotateCCW, RotateCW, AntiTranspose, Rotate180, MirrorY, MirrorX},
		MirrorX:       {MirrorX, RotateCW, Identity, Rotate180, MirrorY, RotateCCW, Transpose, AntiTranspose},
		MirrorY:       {MirrorY, RotateCCW, Rotate180, Identity, MirrorX, RotateCW, AntiTranspose, Transpose},
		Rotate180:     {Rotate180, AntiTranspose, MirrorY, MirrorX, Identity, Transpose, RotateCCW, RotateCW},
		AntiTranspose: {AntiTranspose, Rotate180, RotateCW, RotateCCW, Transpose, Identity, MirrorX, MirrorY},
		RotateCW:      {RotateCW, MirrorX, AntiTranspose, Transpose, RotateCCW, MirrorY, Rotate180, Identity},
		RotateCCW:     {RotateCCW, MirrorY, Transpose, AntiTranspose, RotateCW, MirrorX, Identity, Rotate180},
	}
	for a, row := range table {
		for j, want := range row {
			b := AllXF[j]
			if got := a.Compose(b); got != want {
				t.Errorf("%s.Compose(%s) = %s, want %s", xfName[a], xfName[b], xfName[got], xfName[want])
			}
		}
	}
	// The table itself must be a Latin square (each row and column a
	// permutation of D4) — a transcription error above would break this.
	for a, row := range table {
		seen := map[XF]bool{}
		for _, e := range row {
			if seen[e] {
				t.Errorf("row %s repeats %s", xfName[a], xfName[e])
			}
			seen[e] = true
		}
	}
}

// TestXFInverseTable pins every named inverse: the two proper rotations are
// each other's inverse, every reflection (and the half-turn and identity) is
// an involution.
func TestXFInverseTable(t *testing.T) {
	cases := []struct{ a, inv XF }{
		{Identity, Identity},
		{Transpose, Transpose},
		{MirrorX, MirrorX},
		{MirrorY, MirrorY},
		{Rotate180, Rotate180},
		{AntiTranspose, AntiTranspose},
		{RotateCW, RotateCCW},
		{RotateCCW, RotateCW},
	}
	for _, c := range cases {
		if got := c.a.Inverse(); got != c.inv {
			t.Errorf("%s.Inverse() = %s, want %s", xfName[c.a], xfName[got], xfName[c.inv])
		}
		if got := c.a.Compose(c.inv); got != Identity {
			t.Errorf("%s.Compose(%s) = %s, want Identity", xfName[c.a], xfName[c.inv], xfName[got])
		}
	}
}

// TestXFElementOrders pins the order of every element: D4 has one identity,
// five involutions (four reflections and the half-turn) and two elements of
// order four (the quarter-turns).
func TestXFElementOrders(t *testing.T) {
	wantOrder := map[XF]int{
		Identity:  1,
		Transpose: 2, MirrorX: 2, MirrorY: 2, Rotate180: 2, AntiTranspose: 2,
		RotateCW: 4, RotateCCW: 4,
	}
	for _, a := range AllXF {
		acc, order := a, 1
		for acc != Identity {
			acc = acc.Compose(a)
			order++
			if order > 8 {
				t.Fatalf("%s has order > 8", xfName[a])
			}
		}
		if order != wantOrder[a] {
			t.Errorf("%s has order %d, want %d", xfName[a], order, wantOrder[a])
		}
	}
}

// Composition must be associative over all 512 triples (Compose goes through
// matrix multiplication, so this exercises fromMatrix on every product).
func TestXFComposeAssociative(t *testing.T) {
	for _, a := range AllXF {
		for _, b := range AllXF {
			for _, c := range AllXF {
				l := a.Compose(b).Compose(c)
				r := a.Compose(b.Compose(c))
				if l != r {
					t.Fatalf("(%s∘%s)∘%s = %s but %s∘(%s∘%s) = %s",
						xfName[a], xfName[b], xfName[c], xfName[l],
						xfName[a], xfName[b], xfName[c], xfName[r])
				}
			}
		}
	}
	// D4 is not abelian; pin one witness pair so a degenerate implementation
	// that collapses to a commutative subgroup cannot pass.
	if MirrorX.Compose(Transpose) != RotateCW || Transpose.Compose(MirrorX) != RotateCCW {
		t.Error("MirrorX/Transpose products lost their non-commutativity")
	}
}

// TestXFEntryExitImages pins where each transform sends the canonical motif
// endpoints — entry (0,0) and exit (P-1,0) on the bottom edge (s = 4 here).
// These images are exactly the paper's major/joiner-vector data: the cube
// constructor orients faces by matching them across seams, so the table
// documents which corner pairs each orientation offers.
func TestXFEntryExitImages(t *testing.T) {
	const s = 4
	cases := []struct {
		xf          XF
		entry, exit Point
	}{
		{Identity, Point{0, 0}, Point{3, 0}},
		{Transpose, Point{0, 0}, Point{0, 3}},
		{MirrorX, Point{3, 0}, Point{0, 0}},
		{MirrorY, Point{0, 3}, Point{3, 3}},
		{Rotate180, Point{3, 3}, Point{0, 3}},
		{AntiTranspose, Point{3, 3}, Point{3, 0}},
		{RotateCW, Point{3, 0}, Point{3, 3}},
		{RotateCCW, Point{0, 3}, Point{0, 0}},
	}
	for _, c := range cases {
		if got := c.xf.Apply(Point{0, 0}, s); got != c.entry {
			t.Errorf("%s entry image = %v, want %v", xfName[c.xf], got, c.entry)
		}
		if got := c.xf.Apply(Point{s - 1, 0}, s); got != c.exit {
			t.Errorf("%s exit image = %v, want %v", xfName[c.xf], got, c.exit)
		}
		// Every orientation keeps the endpoints on one domain edge — the
		// shared-edge property that lets Hilbert and Peano levels nest.
		sameEdge := c.entry.X == c.exit.X && (c.entry.X == 0 || c.entry.X == s-1) ||
			c.entry.Y == c.exit.Y && (c.entry.Y == 0 || c.entry.Y == s-1)
		if !sameEdge {
			t.Errorf("%s maps the entry/exit pair off a single edge: %v, %v", xfName[c.xf], c.entry, c.exit)
		}
	}
}
