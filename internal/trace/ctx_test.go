package trace

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// manyMessages builds a message list large enough that the event loop is
// guaranteed to hit a cancellation poll (the loop polls every 4096 events;
// each message schedules three).
func manyMessages(n int) []Message {
	msgs := make([]Message, n)
	for i := range msgs {
		msgs[i] = Message{From: i % 2, To: 2 + i%2, Bytes: 100}
	}
	return msgs
}

func TestSimulateCtxBackgroundMatchesSimulate(t *testing.T) {
	mod := simpleModel()
	compute := []float64{1, 2, 3, 4}
	msgs := manyMessages(5000)

	plain, err := Simulate(compute, msgs, mod)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := SimulateCtx(context.Background(), compute, msgs, mod)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, withCtx) {
		t.Error("SimulateCtx with background context differs from Simulate")
	}
}

func TestSimulateCtxExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SimulateCtx(ctx, []float64{1, 2, 3, 4}, manyMessages(5000), simpleModel())
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not unwrap to context.Canceled", err)
	}
}
