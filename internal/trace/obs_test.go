package trace

import (
	"context"
	"reflect"
	"testing"

	"sfccube/internal/obs"
)

// TestSimulateObsMetersAndDoesNotPerturb: an instrumented simulation must
// return the exact Result of the uninstrumented one and meter run/event/
// message counts plus the queue-depth high-water mark.
func TestSimulateObsMetersAndDoesNotPerturb(t *testing.T) {
	mod := simpleModel()
	compute := []float64{1, 2, 3, 4}
	msgs := []Message{
		{From: 0, To: 1, Bytes: 1024}, {From: 1, To: 2, Bytes: 2048},
		{From: 2, To: 3, Bytes: 512}, {From: 3, To: 0, Bytes: 4096},
	}
	plain, err := Simulate(compute, msgs, mod)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	metered, err := SimulateObs(context.Background(), compute, msgs, mod, reg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, metered) {
		t.Fatalf("instrumentation changed the result:\nplain:   %+v\nmetered: %+v", plain, metered)
	}
	if plain.MaxQueueDepth <= 0 || plain.Events <= 0 {
		t.Fatalf("missing queue/event accounting: %+v", plain)
	}
	if got := reg.Counter("trace_sim_runs_total").Value(); got != 1 {
		t.Errorf("runs_total = %d, want 1", got)
	}
	if got := reg.Counter("trace_sim_events_total").Value(); got != metered.Events {
		t.Errorf("events_total = %d, want %d", got, metered.Events)
	}
	if got := reg.Counter("trace_sim_messages_total").Value(); got != int64(len(msgs)) {
		t.Errorf("messages_total = %d, want %d", got, len(msgs))
	}
	h := reg.Histogram("trace_sim_queue_depth")
	if h.Count() == 0 {
		t.Error("no queue-depth samples recorded")
	}
	if h.Sum() < int64(metered.MaxQueueDepth) {
		t.Errorf("depth samples sum %d below high-water mark %d", h.Sum(), metered.MaxQueueDepth)
	}
}
