// Package trace is a discrete-event simulator of one bulk-synchronous SEAM
// time step at message granularity. Where package machine evaluates closed
// formulas (per-message alpha/beta plus a per-node adapter term), trace
// actually schedules every message through the shared node adapters and
// reports when each processor finishes -- including the queueing delays the
// analytic model can only approximate. The two models are cross-checked in
// the tests and in the model-fidelity experiment: the analytic model must
// track the event-driven one closely enough that the paper's conclusions do
// not depend on which is used.
//
// The simulated protocol matches the 2003-era SEAM exchange: each processor
// computes its elements, then posts one message per neighbouring processor;
// messages leave through the sender's node adapter one at a time, spend the
// switch latency on the wire, and are delivered through the receiver's node
// adapter one at a time. A processor's step ends when it has finished
// computing and every message it sends and receives has been delivered.
package trace

import (
	"container/heap"
	"context"
	"fmt"
	"sort"

	"sfccube/internal/machine"
	"sfccube/internal/mesh"
	"sfccube/internal/obs"
	"sfccube/internal/partition"
)

// Message is one point-to-point exchange of a time step.
type Message struct {
	From, To int
	Bytes    int64
}

// Result is the outcome of the event-driven simulation.
type Result struct {
	// Finish[p] is the time processor p completed the step.
	Finish []float64
	// StepTime is the slowest processor's finish time.
	StepTime float64
	// AdapterBusy[n] is the total time node n's adapter spent transmitting
	// or delivering.
	AdapterBusy []float64
	// Messages is the number of messages simulated.
	Messages int
	// MaxQueueDepth is the deepest the event queue ever got — the
	// simulator's working-set high-water mark, useful for sizing sweeps.
	MaxQueueDepth int
	// Events is the total number of simulator events processed.
	Events int64
}

// event is a scheduled simulator event.
type event struct {
	t    float64
	seq  int // tie-break for determinism
	kind int
	proc int // acting processor (send events)
	msg  int // message index
}

const (
	evComputeDone = iota
	evSendStart
	evWireDone
	evDelivered
)

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }
func (q *eventQueue) push(e event) { heap.Push(q, e) }
func (q *eventQueue) pop() event   { return heap.Pop(q).(event) }

// Simulate runs the event-driven model for one step: computeTime[p] is each
// processor's element work, msgs are the exchanges, mod supplies latency,
// adapter bandwidth and node layout. It is SimulateCtx without a deadline.
func Simulate(computeTime []float64, msgs []Message, mod machine.Model) (Result, error) {
	return SimulateCtx(context.Background(), computeTime, msgs, mod)
}

// SimulateCtx is Simulate with cooperative cancellation: the event loop
// polls ctx every few thousand events (a large sweep schedules millions),
// and on expiry returns an error wrapping ctx.Err(). An un-cancelled
// SimulateCtx is identical to Simulate — the polls do not perturb the
// deterministic event order.
func SimulateCtx(ctx context.Context, computeTime []float64, msgs []Message, mod machine.Model) (Result, error) {
	return SimulateObs(ctx, computeTime, msgs, mod, nil)
}

// simMetrics holds the pre-resolved simulator metric handles; nil is the
// disabled path (see DESIGN.md "Observability").
type simMetrics struct {
	runs   *obs.Counter   // trace_sim_runs_total
	events *obs.Counter   // trace_sim_events_total
	msgs   *obs.Counter   // trace_sim_messages_total
	depth  *obs.Histogram // trace_sim_queue_depth
}

func newSimMetrics(reg *obs.Registry) *simMetrics {
	if reg == nil {
		return nil
	}
	reg.Help("trace_sim_runs_total", "event-driven step simulations executed")
	reg.Help("trace_sim_events_total", "simulator events processed")
	reg.Help("trace_sim_messages_total", "point-to-point messages simulated")
	reg.Help("trace_sim_queue_depth", "event-queue depth sampled every 4096 events, plus the final high-water mark")
	return &simMetrics{
		runs:   reg.Counter("trace_sim_runs_total"),
		events: reg.Counter("trace_sim_events_total"),
		msgs:   reg.Counter("trace_sim_messages_total"),
		depth:  reg.Histogram("trace_sim_queue_depth"),
	}
}

// SimulateObs is SimulateCtx with metrics: when reg is non-nil the run's
// event count, message count and sampled event-queue depths are recorded
// under trace_sim_* (the queue-depth high-water mark is also returned in
// Result.MaxQueueDepth either way). Metering never perturbs the simulated
// schedule: observation happens outside the event ordering.
func SimulateObs(ctx context.Context, computeTime []float64, msgs []Message, mod machine.Model, reg *obs.Registry) (Result, error) {
	nproc := len(computeTime)
	if mod.ProcsPerNode < 1 {
		return Result{}, fmt.Errorf("trace: ProcsPerNode must be >= 1")
	}
	nodeOf, numNodes := machine.NodeLayout(nproc, mod)

	res := Result{
		Finish:      make([]float64, nproc),
		AdapterBusy: make([]float64, numNodes),
		Messages:    len(msgs),
	}

	// Per-processor send queues in deterministic order (by destination).
	sendQ := make([][]int, nproc)
	for i, m := range msgs {
		if m.From < 0 || m.From >= nproc || m.To < 0 || m.To >= nproc {
			return Result{}, fmt.Errorf("trace: message %d endpoints out of range", i)
		}
		sendQ[m.From] = append(sendQ[m.From], i)
	}
	for p := range sendQ {
		sort.Slice(sendQ[p], func(a, b int) bool { return msgs[sendQ[p][a]].To < msgs[sendQ[p][b]].To })
	}

	// State.
	sendFree := make([]float64, numNodes) // when the node adapter can next transmit
	recvFree := make([]float64, numNodes) // when it can next deliver
	nextSend := make([]int, nproc)        // index into sendQ[p]
	pendingIn := make([]int, nproc)       // messages still to receive
	pendingOut := make([]int, nproc)      // messages still to finish sending
	computeDone := make([]float64, nproc)
	delivered := make([]float64, nproc) // time last inbound message arrived
	sentAll := make([]float64, nproc)   // time last outbound message left

	for _, m := range msgs {
		pendingIn[m.To]++
		pendingOut[m.From]++
	}

	met := newSimMetrics(reg)
	var q eventQueue
	seq := 0
	post := func(t float64, kind, proc, msg int) {
		q.push(event{t: t, seq: seq, kind: kind, proc: proc, msg: msg})
		seq++
		if l := q.Len(); l > res.MaxQueueDepth {
			res.MaxQueueDepth = l
		}
	}

	// adapterBeta is the transmission cost per byte through a node adapter;
	// fall back to the remote link bandwidth when no adapter is modelled.
	adapterBeta := mod.NodeAdapterBeta
	if adapterBeta == 0 {
		adapterBeta = mod.BetaRemote
	}

	for p := 0; p < nproc; p++ {
		post(computeTime[p], evComputeDone, p, -1)
	}

	trySend := func(now float64, p int) {
		if nextSend[p] >= len(sendQ[p]) {
			return
		}
		post(now, evSendStart, p, sendQ[p][nextSend[p]])
	}

	polled := 0
	for q.Len() > 0 {
		if polled++; polled&0xfff == 0 {
			select {
			case <-ctx.Done():
				return Result{}, fmt.Errorf("trace: simulation of %d messages over %d processors cancelled: %w",
					len(msgs), nproc, ctx.Err())
			default:
			}
			if met != nil {
				met.depth.Observe(int64(q.Len()))
			}
		}
		e := q.pop()
		switch e.kind {
		case evComputeDone:
			computeDone[e.proc] = e.t
			trySend(e.t, e.proc)
		case evSendStart:
			m := msgs[e.msg]
			node := nodeOf[m.From]
			intra := nodeOf[m.From] == nodeOf[m.To]
			start := e.t
			if !intra && sendFree[node] > start {
				start = sendFree[node] // wait for the shared adapter
			}
			var txDone, arrive float64
			if intra {
				// Shared-memory copy: latency + memory bandwidth, no
				// adapter involvement.
				txDone = start + mod.AlphaLocal + float64(m.Bytes)*mod.BetaLocal
				arrive = txDone
			} else {
				txDone = start + float64(m.Bytes)*adapterBeta
				sendFree[node] = txDone
				res.AdapterBusy[node] += txDone - start
				arrive = txDone + mod.AlphaRemote + float64(m.Bytes)*mod.BetaRemote
			}
			// The sender is free to queue its next message once this one
			// is handed to the adapter.
			nextSend[m.From]++
			pendingOut[m.From]--
			if sentAll[m.From] < txDone {
				sentAll[m.From] = txDone
			}
			trySend(txDone, m.From)
			post(arrive, evWireDone, -1, e.msg)
		case evWireDone:
			m := msgs[e.msg]
			node := nodeOf[m.To]
			start := e.t
			intra := nodeOf[m.From] == nodeOf[m.To]
			var done float64
			if intra {
				done = start
			} else {
				if recvFree[node] > start {
					start = recvFree[node]
				}
				done = start + float64(m.Bytes)*adapterBeta
				recvFree[node] = done
				res.AdapterBusy[node] += done - start
			}
			post(done, evDelivered, -1, e.msg)
		case evDelivered:
			m := msgs[e.msg]
			pendingIn[m.To]--
			if delivered[m.To] < e.t {
				delivered[m.To] = e.t
			}
		}
	}

	for p := 0; p < nproc; p++ {
		t := computeDone[p]
		if sentAll[p] > t {
			t = sentAll[p]
		}
		if delivered[p] > t {
			t = delivered[p]
		}
		if pendingIn[p] != 0 || pendingOut[p] != 0 {
			return Result{}, fmt.Errorf("trace: processor %d finished with pending messages", p)
		}
		res.Finish[p] = t
		if t > res.StepTime {
			res.StepTime = t
		}
	}
	res.Events = int64(polled)
	if met != nil {
		met.runs.Inc()
		met.events.Add(res.Events)
		met.msgs.Add(int64(len(msgs)))
		met.depth.Observe(int64(res.MaxQueueDepth))
	}
	return res, nil
}

// StepMessages derives the per-step message list of a partitioned
// cubed-sphere from the mesh adjacency and workload, aggregating all
// element boundaries between each ordered processor pair into one message
// (the SEAM exchange packs per-neighbour buffers).
func StepMessages(m *mesh.Mesh, p *partition.Partition, w machine.Workload) []Message {
	type pair struct{ from, to int32 }
	vol := map[pair]int64{}
	for e := 0; e < m.NumElems(); e++ {
		pe := int32(p.Part(e))
		id := mesh.ElemID(e)
		for _, nb := range m.EdgeNeighbors(id) {
			if pn := int32(p.Part(int(nb))); pn != pe {
				vol[pair{pe, pn}] += w.BytesPerEdge
			}
		}
		for _, nb := range m.CornerNeighbors(id) {
			if pn := int32(p.Part(int(nb))); pn != pe {
				vol[pair{pe, pn}] += w.BytesPerCorner
			}
		}
	}
	msgs := make([]Message, 0, len(vol))
	for pr, b := range vol {
		msgs = append(msgs, Message{From: int(pr.from), To: int(pr.to), Bytes: b})
	}
	sort.Slice(msgs, func(i, j int) bool {
		if msgs[i].From != msgs[j].From {
			return msgs[i].From < msgs[j].From
		}
		return msgs[i].To < msgs[j].To
	})
	return msgs
}

// SimulateStep runs the event-driven model for one step of the workload on
// the partitioned mesh, computing per-processor work from the partition.
func SimulateStep(m *mesh.Mesh, p *partition.Partition, w machine.Workload, mod machine.Model) (Result, error) {
	nproc := p.NumParts()
	compute := make([]float64, nproc)
	for e := 0; e < m.NumElems(); e++ {
		compute[p.Part(e)] += float64(w.FlopsPerElem) / mod.FlopsPerProc
	}
	return Simulate(compute, StepMessages(m, p, w), mod)
}
