package trace

import (
	"math"
	"testing"

	"sfccube/internal/core"
	"sfccube/internal/graph"
	"sfccube/internal/machine"
	"sfccube/internal/metis"
	"sfccube/internal/partition"
)

func simpleModel() machine.Model {
	return machine.Model{
		FlopsPerProc:    1e9,
		AlphaRemote:     10e-6,
		BetaRemote:      1e-9,
		AlphaLocal:      1e-6,
		BetaLocal:       1e-10,
		ProcsPerNode:    2,
		NodeAdapterBeta: 2e-9,
	}
}

func TestSimulateNoMessages(t *testing.T) {
	res, err := Simulate([]float64{1.5, 2.5, 0.5}, nil, simpleModel())
	if err != nil {
		t.Fatal(err)
	}
	if res.StepTime != 2.5 {
		t.Errorf("step time %v, want 2.5 (slowest compute)", res.StepTime)
	}
	if res.Messages != 0 {
		t.Error("message count wrong")
	}
	for p, f := range res.Finish {
		want := []float64{1.5, 2.5, 0.5}[p]
		if f != want {
			t.Errorf("proc %d finish %v, want %v", p, f, want)
		}
	}
}

func TestSimulateSingleRemoteMessage(t *testing.T) {
	mod := simpleModel()
	// Procs 0 and 2 are on different 2-wide nodes.
	msgs := []Message{{From: 0, To: 2, Bytes: 1000}}
	res, err := Simulate([]float64{1.0, 0, 0}, msgs, mod)
	if err != nil {
		t.Fatal(err)
	}
	// Timeline: compute 1.0, transmit through sender adapter (1000*2e-9 =
	// 2e-6), wire (10e-6 + 1000*1e-9 = 11e-6), receiver adapter 2e-6.
	want := 1.0 + 2e-6 + 11e-6 + 2e-6
	if math.Abs(res.Finish[2]-want) > 1e-12 {
		t.Errorf("receiver finish %v, want %v", res.Finish[2], want)
	}
	// The sender finishes when its transmit completes.
	if math.Abs(res.Finish[0]-(1.0+2e-6)) > 1e-12 {
		t.Errorf("sender finish %v", res.Finish[0])
	}
	if res.AdapterBusy[0] <= 0 || res.AdapterBusy[1] <= 0 {
		t.Error("adapters did not register busy time")
	}
}

func TestSimulateIntraNodeMessageSkipsAdapter(t *testing.T) {
	mod := simpleModel()
	msgs := []Message{{From: 0, To: 1, Bytes: 1000}} // same node
	res, err := Simulate([]float64{1.0, 0}, msgs, mod)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 + mod.AlphaLocal + 1000*mod.BetaLocal
	if math.Abs(res.Finish[1]-want) > 1e-12 {
		t.Errorf("intra-node delivery %v, want %v", res.Finish[1], want)
	}
	if res.AdapterBusy[0] != 0 {
		t.Error("intra-node message used the adapter")
	}
}

// Two processors on one node sending off-node simultaneously must serialise
// through the shared adapter.
func TestSimulateAdapterContention(t *testing.T) {
	mod := simpleModel()
	msgs := []Message{
		{From: 0, To: 2, Bytes: 1e6},
		{From: 1, To: 3, Bytes: 1e6},
	}
	res, err := Simulate([]float64{0, 0, 0, 0}, msgs, mod)
	if err != nil {
		t.Fatal(err)
	}
	tx := 1e6 * mod.NodeAdapterBeta // 2 ms each
	// One of the receivers sees its message delayed by the other's
	// transmission: latest finish >= 2*tx.
	if res.StepTime < 2*tx {
		t.Errorf("no contention visible: step %v < %v", res.StepTime, 2*tx)
	}
	if res.AdapterBusy[0] < 2*tx-1e-12 {
		t.Errorf("sender adapter busy %v, want >= %v", res.AdapterBusy[0], 2*tx)
	}
}

func TestSimulateBadMessage(t *testing.T) {
	if _, err := Simulate([]float64{1}, []Message{{From: 0, To: 5, Bytes: 1}}, simpleModel()); err == nil {
		t.Error("out-of-range message accepted")
	}
	bad := simpleModel()
	bad.ProcsPerNode = 0
	if _, err := Simulate([]float64{1}, nil, bad); err == nil {
		t.Error("bad model accepted")
	}
}

func TestStepMessagesSymmetryAndVolume(t *testing.T) {
	res, err := core.PartitionCubedSphere(core.Config{Ne: 4, NProcs: 8})
	if err != nil {
		t.Fatal(err)
	}
	w := machine.DefaultWorkload()
	msgs := StepMessages(res.Mesh, res.Partition, w)
	// Every ordered pair appears in both directions with equal volume
	// (the mesh adjacency is symmetric and both weights are symmetric).
	vol := map[[2]int]int64{}
	for _, m := range msgs {
		vol[[2]int{m.From, m.To}] = m.Bytes
	}
	for k, v := range vol {
		if vol[[2]int{k[1], k[0]}] != v {
			t.Fatalf("asymmetric volume between %v", k)
		}
	}
	// Total bytes must match the analytic model's accounting.
	rep, err := machine.SimulateStep(res.Mesh, res.Partition, w, machine.NCARP690(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, m := range msgs {
		total += m.Bytes
	}
	if total != rep.TotalCommBytes {
		t.Errorf("message bytes %d != analytic %d", total, rep.TotalCommBytes)
	}
}

// The event-driven simulator and the analytic model must agree on who wins:
// ranking of partitions by step time is preserved, and absolute times are
// within a factor of two of each other.
func TestTraceTracksAnalyticModel(t *testing.T) {
	const ne, nproc = 8, 96
	res, err := core.PartitionCubedSphere(core.Config{Ne: ne, NProcs: nproc})
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromMesh(res.Mesh, graph.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	kway, err := metis.Partition(g, nproc, metis.Options{Method: metis.KWay})
	if err != nil {
		t.Fatal(err)
	}
	w := machine.DefaultWorkload()
	mod := machine.NCARP690()

	times := map[string][2]float64{}
	for name, p := range map[string]*partition.Partition{"sfc": res.Partition, "kway": kway} {
		an, err := machine.SimulateStep(res.Mesh, p, w, mod, nil)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := SimulateStep(res.Mesh, p, w, mod)
		if err != nil {
			t.Fatal(err)
		}
		times[name] = [2]float64{an.StepTime, ev.StepTime}
		ratio := ev.StepTime / an.StepTime
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%s: event-driven %v vs analytic %v (ratio %v)",
				name, ev.StepTime, an.StepTime, ratio)
		}
	}
	// Ranking preserved.
	anWin := times["sfc"][0] <= times["kway"][0]
	evWin := times["sfc"][1] <= times["kway"][1]
	if anWin != evWin {
		t.Errorf("models disagree on the winner: analytic %v event %v", times["sfc"], times["kway"])
	}
}

func BenchmarkTraceK1536P768(b *testing.B) {
	res, err := core.PartitionCubedSphere(core.Config{Ne: 16, NProcs: 768})
	if err != nil {
		b.Fatal(err)
	}
	w := machine.DefaultWorkload()
	mod := machine.NCARP690()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateStep(res.Mesh, res.Partition, w, mod); err != nil {
			b.Fatal(err)
		}
	}
}
