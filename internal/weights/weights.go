// Package weights generates per-element computation weights from physics
// proxies — the heterogeneous-cost regime the paper never reaches (its
// experiments assume unit element cost) but that real SEAM-style workloads
// live in. Weighted Hilbert-curve splitting is what keeps SFC partitioning
// competitive under non-uniform load (Liu et al., arXiv:1708.01365); this
// package supplies the load.
//
// A weight generator is described by a Spec, parsed from a compact string
// grammar ("cfl", "hv:amp=16,m=6", "uniform") that doubles as the wire and
// cache-key form on the partition service. Every generator is a pure
// function of the mesh geometry and the spec parameters — no RNG, no time —
// so a spec is a complete content address for its weight vector and the
// generated weights are byte-identical at any GOMAXPROCS.
package weights

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"sfccube/internal/mesh"
	"sfccube/internal/par"
)

// Kind selects the physics proxy.
type Kind int

const (
	// Uniform is unit element cost: the paper's regime. Its weight vector
	// is nil, which every weighted API reads as "unweighted".
	Uniform Kind = iota
	// CFL models advective time-step cost: the wind speed of solid-body
	// rotation about a tilted axis (Williamson test 1). Elements under the
	// jet need more substeps, so cost scales with |axis × x| at the
	// element centre.
	CFL
	// Hyperviscosity models scale-selective dissipation cost: activity
	// concentrates where a Rossby-Haurwitz wavenumber-M pattern has large
	// amplitude, cos^M(lat)·cos(M·lon), the shape of the Williamson-6
	// test the SEAM solver integrates.
	Hyperviscosity
)

func (k Kind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case CFL:
		return "cfl"
	case Hyperviscosity:
		return "hv"
	}
	return "Kind(?)"
}

// Defaults of the spec parameters.
const (
	// DefaultAmp is the max/min element-cost ratio.
	DefaultAmp = 8.0
	// DefaultAlpha is the rotation-axis tilt of the CFL proxy (45°, the
	// standard Williamson flow-over-the-pole angle).
	DefaultAlpha = math.Pi / 4
	// DefaultWavenumber is the zonal wavenumber of the hyperviscosity
	// proxy (Williamson 6 uses wavenumber 4).
	DefaultWavenumber = 4
	// MaxAmp bounds the cost ratio so int64 part sums stay far from
	// overflow at any realistic element count.
	MaxAmp = 1e6
	// MaxWavenumber bounds the hyperviscosity pattern; beyond ~64 the
	// pattern aliases on any mesh this repo partitions.
	MaxWavenumber = 64
)

// Spec describes one weight generator. The zero value is Uniform.
type Spec struct {
	Kind Kind
	// Amp is the max/min cost ratio: weights span [1, round(Amp)].
	Amp float64
	// Alpha is the CFL rotation-axis tilt in radians.
	Alpha float64
	// Wavenumber is the hyperviscosity zonal wavenumber M.
	Wavenumber int
}

// ParseError reports a spec string the grammar rejects; the service maps it
// to a 400.
type ParseError struct {
	Spec   string
	Reason string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("weights: invalid spec %q: %s", e.Spec, e.Reason)
}

// Parse reads the spec grammar:
//
//	""            -> Uniform
//	"uniform"     -> Uniform
//	"cfl"         -> CFL with defaults
//	"cfl:amp=16,alpha=0.5"
//	"hv"          -> Hyperviscosity with defaults
//	"hv:amp=16,m=6" ("hyperviscosity" is an accepted alias)
//
// Unknown kinds, unknown parameters, and out-of-range values fail with
// *ParseError. The result is normalised: Parse(s).String() is the canonical
// spelling of s and Parse is idempotent over it.
func Parse(s string) (Spec, error) {
	name, params, hasParams := strings.Cut(s, ":")
	spec := Spec{Amp: DefaultAmp, Alpha: DefaultAlpha, Wavenumber: DefaultWavenumber}
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "uniform":
		if hasParams {
			return Spec{}, &ParseError{Spec: s, Reason: "uniform takes no parameters"}
		}
		return Spec{}, nil
	case "cfl":
		spec.Kind = CFL
	case "hv", "hyperviscosity":
		spec.Kind = Hyperviscosity
	default:
		return Spec{}, &ParseError{Spec: s, Reason: fmt.Sprintf("unknown kind %q", name)}
	}
	if !hasParams || params == "" {
		return spec, nil
	}
	for _, kv := range strings.Split(params, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Spec{}, &ParseError{Spec: s, Reason: fmt.Sprintf("parameter %q is not key=value", kv)}
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		switch key {
		case "amp":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Spec{}, &ParseError{Spec: s, Reason: "amp: " + err.Error()}
			}
			spec.Amp = f
		case "alpha":
			if spec.Kind != CFL {
				return Spec{}, &ParseError{Spec: s, Reason: "alpha only applies to cfl"}
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Spec{}, &ParseError{Spec: s, Reason: "alpha: " + err.Error()}
			}
			spec.Alpha = f
		case "m":
			if spec.Kind != Hyperviscosity {
				return Spec{}, &ParseError{Spec: s, Reason: "m only applies to hv"}
			}
			n, err := strconv.Atoi(val)
			if err != nil {
				return Spec{}, &ParseError{Spec: s, Reason: "m: " + err.Error()}
			}
			spec.Wavenumber = n
		default:
			return Spec{}, &ParseError{Spec: s, Reason: fmt.Sprintf("unknown parameter %q", key)}
		}
	}
	if err := spec.validate(s); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

func (s Spec) validate(raw string) error {
	if s.Kind == Uniform {
		return nil
	}
	if math.IsNaN(s.Amp) || math.IsInf(s.Amp, 0) || s.Amp < 1 || s.Amp > MaxAmp {
		return &ParseError{Spec: raw, Reason: fmt.Sprintf("amp=%g out of range [1, %g]", s.Amp, MaxAmp)}
	}
	if math.IsNaN(s.Alpha) || math.IsInf(s.Alpha, 0) {
		return &ParseError{Spec: raw, Reason: "alpha must be finite"}
	}
	if s.Wavenumber < 1 || s.Wavenumber > MaxWavenumber {
		return &ParseError{Spec: raw, Reason: fmt.Sprintf("m=%d out of range [1, %d]", s.Wavenumber, MaxWavenumber)}
	}
	return nil
}

// String renders the canonical spelling: the kind, followed by the
// parameters that differ from their defaults, in fixed order. Round-trip
// law: Parse(s.String()) == s for any spec returned by Parse.
func (s Spec) String() string {
	if s.Kind == Uniform {
		return "uniform"
	}
	var params []string
	if s.Amp != DefaultAmp {
		params = append(params, "amp="+strconv.FormatFloat(s.Amp, 'g', -1, 64))
	}
	if s.Kind == CFL && s.Alpha != DefaultAlpha {
		params = append(params, "alpha="+strconv.FormatFloat(s.Alpha, 'g', -1, 64))
	}
	if s.Kind == Hyperviscosity && s.Wavenumber != DefaultWavenumber {
		params = append(params, "m="+strconv.Itoa(s.Wavenumber))
	}
	if len(params) == 0 {
		return s.Kind.String()
	}
	return s.Kind.String() + ":" + strings.Join(params, ",")
}

// IsUniform reports whether the spec generates unit cost (nil weights).
func (s Spec) IsUniform() bool { return s.Kind == Uniform }

// Activity evaluates the proxy's normalised activity in [0, 1] at a point
// on the unit sphere. Uniform activity is 0 everywhere.
func (s Spec) Activity(p mesh.Vec3) float64 {
	switch s.Kind {
	case CFL:
		// |axis × p|: the speed of solid-body rotation about the tilted
		// axis, 0 at the rotated poles, 1 on the rotated equator.
		axis := mesh.Vec3{X: math.Sin(s.Alpha), Y: 0, Z: math.Cos(s.Alpha)}
		return axis.Cross(p).Norm()
	case Hyperviscosity:
		lat, lon := mesh.LatLon(p)
		return math.Abs(math.Pow(math.Cos(lat), float64(s.Wavenumber)) *
			math.Cos(float64(s.Wavenumber)*lon))
	}
	return 0
}

// Weight maps a point's activity to an integer element cost in
// [1, round(Amp)]: 1 + round(activity * (Amp-1)).
func (s Spec) Weight(p mesh.Vec3) int64 {
	if s.Kind == Uniform {
		return 1
	}
	return 1 + int64(math.Round(s.Activity(p)*(s.Amp-1)))
}

// Generate evaluates the spec at every element centre of m, indexed by
// mesh.ElemID. A Uniform spec returns nil — the canonical "no weights"
// value every weighted API accepts. The per-element evaluation is pure and
// fans out across goroutines; the result is byte-identical at any
// GOMAXPROCS.
func (s Spec) Generate(m *mesh.Mesh) []int64 {
	if s.Kind == Uniform {
		return nil
	}
	w := make([]int64, m.NumElems())
	par.ForChunks(len(w), 1<<12, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			w[e] = s.Weight(m.ElemCenter(mesh.ElemID(e)))
		}
	})
	return w
}

// Int32 converts a weight vector to the int32 vertex weights the graph and
// METIS layers use, failing on values outside [0, MaxInt32] rather than
// truncating silently.
func Int32(w []int64) ([]int32, error) {
	if w == nil {
		return nil, nil
	}
	out := make([]int32, len(w))
	for i, v := range w {
		if v < 0 || v > math.MaxInt32 {
			return nil, fmt.Errorf("weights: weight %d at position %d outside int32 range", v, i)
		}
		out[i] = int32(v)
	}
	return out, nil
}
