package weights

import (
	"math"
	"reflect"
	"testing"

	"sfccube/internal/mesh"
)

func TestParseCanonical(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"", "uniform"},
		{"uniform", "uniform"},
		{"cfl", "cfl"},
		{"cfl:amp=8", "cfl"}, // default amp spelled out
		{"cfl:amp=16", "cfl:amp=16"},
		{"cfl:amp=16,alpha=0.5", "cfl:amp=16,alpha=0.5"},
		{"CFL:Alpha=0.5, Amp=16", "cfl:amp=16,alpha=0.5"}, // case/space/order normalise
		{"hv", "hv"},
		{"hyperviscosity", "hv"},
		{"hv:m=4", "hv"}, // default wavenumber
		{"hv:amp=16,m=6", "hv:amp=16,m=6"},
	}
	for _, c := range cases {
		s, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got := s.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
		// Idempotence: the canonical spelling parses back to itself.
		s2, err := Parse(s.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", s.String(), err)
		}
		if s2 != s {
			t.Errorf("Parse(%q) = %+v, want %+v (not idempotent)", s.String(), s2, s)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"vorticity",           // unknown kind
		"uniform:amp=2",       // uniform takes no params
		"cfl:amp",             // not key=value
		"cfl:speed=3",         // unknown param
		"cfl:amp=0.5",         // amp < 1
		"cfl:amp=1e9",         // amp > MaxAmp
		"cfl:amp=nan",         // non-finite
		"cfl:alpha=inf",       // non-finite
		"cfl:m=4",             // m only applies to hv
		"hv:alpha=1",          // alpha only applies to cfl
		"hv:m=0",              // wavenumber out of range
		"hv:m=65",             // wavenumber out of range
		"hv:m=four",           // not an int
		"cfl:amp=sixteen",     // not a float
		"hv:amp=16,m=6,zed=1", // unknown trailing param
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		} else if _, ok := err.(*ParseError); !ok {
			t.Errorf("Parse(%q): error %T, want *ParseError", in, err)
		}
	}
}

func TestGenerateBoundsAndShape(t *testing.T) {
	m, err := mesh.New(12)
	if err != nil {
		t.Fatal(err)
	}
	for _, specStr := range []string{"cfl", "hv", "cfl:amp=32", "hv:amp=16,m=6"} {
		s, err := Parse(specStr)
		if err != nil {
			t.Fatal(err)
		}
		w := s.Generate(m)
		if len(w) != m.NumElems() {
			t.Fatalf("%s: %d weights for %d elements", specStr, len(w), m.NumElems())
		}
		amp := int64(math.Round(s.Amp))
		min, max := w[0], w[0]
		for _, v := range w {
			if v < 1 || v > amp {
				t.Fatalf("%s: weight %d outside [1, %d]", specStr, v, amp)
			}
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if min == max {
			t.Errorf("%s: degenerate constant weights (%d); proxy should vary over the sphere", specStr, min)
		}
		// Pure function of (mesh, spec): repeated generation is identical.
		if !reflect.DeepEqual(w, s.Generate(m)) {
			t.Errorf("%s: Generate is not deterministic", specStr)
		}
	}
}

func TestGenerateUniformIsNil(t *testing.T) {
	m, err := mesh.New(4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Parse("uniform")
	if err != nil {
		t.Fatal(err)
	}
	if w := s.Generate(m); w != nil {
		t.Fatalf("uniform spec generated %d weights, want nil", len(w))
	}
	if !s.IsUniform() {
		t.Fatal("uniform spec not IsUniform")
	}
}

func TestActivityRange(t *testing.T) {
	m, err := mesh.New(9)
	if err != nil {
		t.Fatal(err)
	}
	for _, specStr := range []string{"cfl", "hv:m=3", "hv:m=8"} {
		s, err := Parse(specStr)
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < m.NumElems(); e++ {
			a := s.Activity(m.ElemCenter(mesh.ElemID(e)))
			if a < 0 || a > 1+1e-12 || math.IsNaN(a) {
				t.Fatalf("%s: activity %g outside [0,1] at element %d", specStr, a, e)
			}
		}
	}
}

func TestInt32Conversion(t *testing.T) {
	got, err := Int32([]int64{0, 1, math.MaxInt32})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int32{0, 1, math.MaxInt32}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Int32 = %v, want %v", got, want)
	}
	if _, err := Int32([]int64{math.MaxInt32 + 1}); err == nil {
		t.Fatal("Int32 accepted an overflowing weight")
	}
	if _, err := Int32([]int64{-1}); err == nil {
		t.Fatal("Int32 accepted a negative weight")
	}
	if w, err := Int32(nil); err != nil || w != nil {
		t.Fatalf("Int32(nil) = %v, %v, want nil, nil", w, err)
	}
}
